"""MapReduce job specification.

A job bundles the user functions (map, reduce, optional combine) with an
input format that parses a split's bytes into records.  The combiner must
be associative and commutative — Incoop's contraction tree (§6.1) relies
on that to reuse partial reductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.hdfs.semantic import split_records

__all__ = ["MapReduceJob", "text_input_format"]

#: Parses split bytes into an iterable of records.
InputFormat = Callable[[bytes], Iterable[Any]]
#: map(record) -> iterable of (key, value) pairs.
MapFn = Callable[[Any], Iterable[tuple[Any, Any]]]
#: reduce(key, values) -> final value for the key.
ReduceFn = Callable[[Any, list[Any]], Any]
#: combine(key, values) -> partial value (same domain as map output values).
CombineFn = Callable[[Any, list[Any]], Any]


def text_input_format(data: bytes) -> list[bytes]:
    """Newline-delimited records (the Hadoop TextInputFormat analogue)."""
    return split_records(data)


@dataclass(frozen=True)
class MapReduceJob:
    """A complete job description.

    ``params`` feeds job-level configuration into the map function (e.g.
    the current centroids for K-means); it participates in memoization
    keys so results are reused only for identical parameters.
    """

    name: str
    map_fn: MapFn
    reduce_fn: ReduceFn
    combine_fn: CombineFn | None = None
    input_format: InputFormat = text_input_format
    n_reducers: int = 4
    params: tuple = field(default_factory=tuple)
    #: Relative per-record map cost (1.0 = Word-Count-like parsing+emit;
    #: K-means distance evaluation is several times heavier).
    compute_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.n_reducers < 1:
            raise ValueError("n_reducers must be >= 1")
        if not self.name:
            raise ValueError("job needs a name")
        if self.compute_weight <= 0:
            raise ValueError("compute_weight must be positive")

    def with_params(self, params: tuple) -> "MapReduceJob":
        from dataclasses import replace

        return replace(self, params=params)
