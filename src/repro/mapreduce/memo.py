"""Memoization server for incremental MapReduce (Incoop §6.1).

Stores sub-computation results keyed by *content*: a map task's key is
``(job, params, split digest)``; a contraction node's key is derived from
its children's keys.  Because Inc-HDFS split digests are stable under
local input edits, re-running a job on slightly-changed input hits the
memo for almost every task.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MemoServer", "memo_key", "params_digest"]


def params_digest(params: tuple) -> str:
    """Stable digest of job parameters (participates in memo keys)."""
    return hashlib.sha256(pickle.dumps(params)).hexdigest()[:16]


def memo_key(job_name: str, params: tuple, split_id: str) -> str:
    """Memoization key for a map task."""
    return f"map:{job_name}:{params_digest(params)}:{split_id}"


@dataclass
class MemoServer:
    """In-memory memoization store with hit/miss accounting."""

    _store: dict[str, Any] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def get(self, key: str) -> Any | None:
        if key in self._store:
            self.hits += 1
            return self._store[key]
        self.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        self._store[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    def invalidate(self, prefix: str = "") -> int:
        """Drop entries whose key starts with ``prefix``; returns count."""
        doomed = [k for k in self._store if k.startswith(prefix)]
        for k in doomed:
            del self._store[k]
        return len(doomed)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- persistence (Incoop's memoization server survives job runs) --------

    def save(self, path) -> None:
        """Persist contents to ``path`` (pickle)."""
        import pathlib

        with pathlib.Path(path).open("wb") as fh:
            pickle.dump(self._store, fh)

    @classmethod
    def load(cls, path) -> "MemoServer":
        """Rebuild a memo server from :meth:`save` output; counters reset."""
        import pathlib

        with pathlib.Path(path).open("rb") as fh:
            store = pickle.load(fh)
        if not isinstance(store, dict):
            raise ValueError(f"{path} does not contain a memo store")
        return cls(_store=store)
