"""Word-Count: the canonical MapReduce application (Fig. 15)."""

from __future__ import annotations

from repro.mapreduce.job import MapReduceJob, text_input_format

__all__ = ["wordcount_job", "wordcount_reference"]


def _map(record: bytes):
    for word in record.split():
        yield word, 1


def _sum(_key, values):
    return sum(values)


def wordcount_job(n_reducers: int = 4) -> MapReduceJob:
    """Count word occurrences; combiner-enabled (sum is associative)."""
    return MapReduceJob(
        name="wordcount",
        map_fn=_map,
        reduce_fn=_sum,
        combine_fn=_sum,
        input_format=text_input_format,
        n_reducers=n_reducers,
    )


def wordcount_reference(data: bytes) -> dict[bytes, int]:
    """Single-process reference implementation for differential testing."""
    counts: dict[bytes, int] = {}
    for line in data.split(b"\n"):
        for word in line.split():
            counts[word] = counts.get(word, 0) + 1
    return counts
