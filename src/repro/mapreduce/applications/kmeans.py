"""K-means clustering as iterative MapReduce (Fig. 15).

Each iteration is one MapReduce job: map assigns every point to its
nearest centroid and emits ``(cluster, (sum_x, sum_y, count))`` partials;
the combiner sums partials; reduce computes new centroids.

Incremental behaviour: the current centroids are job *parameters* and
participate in memoization keys.  To keep keys stable when small input
changes perturb centroids only negligibly, centroids are **quantized**
before keying (Incoop relies on the analogous observation that iterative
jobs converge to stable fixed points; without quantization, a 1e-9 drift
would defeat all reuse).
"""

from __future__ import annotations

from repro.mapreduce.job import MapReduceJob, text_input_format

__all__ = [
    "kmeans_job",
    "kmeans_iterate",
    "parse_point",
    "quantize_centroids",
    "assign_reference",
]

#: Quantization step for centroid memo keys.
CENTROID_QUANTUM = 1e-3


def parse_point(record: bytes) -> tuple[float, float]:
    x, y = record.split(b",")
    return float(x), float(y)


def quantize_centroids(
    centroids: tuple[tuple[float, float], ...], quantum: float = CENTROID_QUANTUM
) -> tuple[tuple[float, float], ...]:
    """Round centroids so nearby parameter sets share memo keys."""
    return tuple(
        (round(x / quantum) * quantum, round(y / quantum) * quantum)
        for x, y in centroids
    )


def _make_map(centroids: tuple[tuple[float, float], ...]):
    def _map(record: bytes):
        try:
            x, y = parse_point(record)
        except ValueError:
            return  # skip malformed records
        best, best_d = 0, float("inf")
        for i, (cx, cy) in enumerate(centroids):
            d = (x - cx) ** 2 + (y - cy) ** 2
            if d < best_d:
                best, best_d = i, d
        yield best, (x, y, 1)

    return _map


def _combine(_key, values):
    sx = sy = n = 0.0
    for vx, vy, vn in values:
        sx += vx
        sy += vy
        n += vn
    return (sx, sy, n)


def _reduce(_key, values):
    sx, sy, n = _combine(_key, values)
    if n == 0:
        return (0.0, 0.0)
    return (sx / n, sy / n)


def kmeans_job(
    centroids: tuple[tuple[float, float], ...], n_reducers: int = 4
) -> MapReduceJob:
    """One K-means iteration for the given (quantized) centroids."""
    q = quantize_centroids(tuple(tuple(c) for c in centroids))
    return MapReduceJob(
        name="kmeans",
        map_fn=_make_map(q),
        reduce_fn=_reduce,
        combine_fn=_combine,
        input_format=text_input_format,
        n_reducers=n_reducers,
        params=q,
        # One distance evaluation per centroid per point.
        compute_weight=1.0 + 0.75 * len(q),
    )


def kmeans_iterate(runtime, path: str, centroids, iterations: int = 3):
    """Run ``iterations`` incremental K-means rounds; returns
    ``(final_centroids, [RunResult, ...])``.

    ``runtime`` may be an :class:`~repro.mapreduce.incoop.IncoopRuntime`
    (incremental) or a plain runtime exposing ``run``.
    """
    results = []
    current = quantize_centroids(tuple(tuple(c) for c in centroids))
    k = len(current)
    for _ in range(iterations):
        job = kmeans_job(current)
        if hasattr(runtime, "run_incremental"):
            result = runtime.run_incremental(job, path)
        else:
            result = runtime.run(job, path)
        results.append(result)
        updated = list(current)
        for cluster, centroid in result.output.items():
            if 0 <= cluster < k:
                updated[cluster] = centroid
        current = quantize_centroids(tuple(updated))
    return current, results


def assign_reference(data: bytes, centroids) -> dict[int, tuple[float, float]]:
    """Single-process one-iteration reference (new centroid per cluster)."""
    sums: dict[int, list[float]] = {}
    for line in data.split(b"\n"):
        if not line:
            continue
        x, y = parse_point(line)
        best, best_d = 0, float("inf")
        for i, (cx, cy) in enumerate(centroids):
            d = (x - cx) ** 2 + (y - cy) ** 2
            if d < best_d:
                best, best_d = i, d
        acc = sums.setdefault(best, [0.0, 0.0, 0.0])
        acc[0] += x
        acc[1] += y
        acc[2] += 1
    return {
        k: (sx / n, sy / n) for k, (sx, sy, n) in sums.items() if n
    }
