"""The three Fig. 15 MapReduce applications."""

from repro.mapreduce.applications.cooccurrence import (
    cooccurrence_job,
    cooccurrence_reference,
)
from repro.mapreduce.applications.kmeans import (
    assign_reference,
    kmeans_iterate,
    kmeans_job,
    quantize_centroids,
)
from repro.mapreduce.applications.wordcount import wordcount_job, wordcount_reference

__all__ = [
    "cooccurrence_job", "cooccurrence_reference",
    "assign_reference", "kmeans_iterate", "kmeans_job", "quantize_centroids",
    "wordcount_job", "wordcount_reference",
]
