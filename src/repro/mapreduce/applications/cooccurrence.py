"""Co-occurrence Matrix: word-pair counts within a sliding window (Fig. 15).

Emits one count per ordered pair of words appearing within ``window``
positions of each other in a record — the "pairs" formulation of the
co-occurrence matrix, a shuffle-heavy workload (its speedup curve in
Fig. 15 sits below Word-Count's).
"""

from __future__ import annotations

from repro.mapreduce.job import MapReduceJob, text_input_format

__all__ = ["cooccurrence_job", "cooccurrence_reference"]

DEFAULT_WINDOW = 3


def _make_map(window: int):
    def _map(record: bytes):
        words = record.split()
        for i, w in enumerate(words):
            for j in range(i + 1, min(i + 1 + window, len(words))):
                yield (w, words[j]), 1

    return _map


def _sum(_key, values):
    return sum(values)


def cooccurrence_job(window: int = DEFAULT_WINDOW, n_reducers: int = 4) -> MapReduceJob:
    """Pairwise co-occurrence counts with a sum combiner."""
    if window < 1:
        raise ValueError("window must be >= 1")
    return MapReduceJob(
        name="cooccurrence",
        map_fn=_make_map(window),
        reduce_fn=_sum,
        combine_fn=_sum,
        input_format=text_input_format,
        n_reducers=n_reducers,
        params=(window,),
    )


def cooccurrence_reference(data: bytes, window: int = DEFAULT_WINDOW) -> dict:
    """Single-process reference for differential testing."""
    counts: dict = {}
    for line in data.split(b"\n"):
        words = line.split()
        for i, w in enumerate(words):
            for j in range(i + 1, min(i + 1 + window, len(words))):
                key = (w, words[j])
                counts[key] = counts.get(key, 0) + 1
    return counts
