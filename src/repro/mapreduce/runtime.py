"""MapReduce execution over the in-process cluster.

Runs real map/combine/reduce functions over real split bytes, while
accounting *simulated* task times against a cluster model (the paper's
Fig. 15 testbed is a 20-node Hadoop cluster).  Task-time constants are
calibrated to Hadoop-0.20-era behaviour where per-task scheduling and JVM
overheads are a large fraction of small-task runtime — the regime that
makes task-level memoization profitable.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from repro.hdfs.client import HDFSClient
from repro.mapreduce.job import MapReduceJob

__all__ = ["ClusterModel", "RunStats", "RunResult", "MapReduceRuntime", "partition_of"]


def partition_of(key: Any, n_reducers: int) -> int:
    """Deterministic partitioner (Python hash is salted per process for
    str/bytes, so use a stable hash)."""
    import zlib

    if isinstance(key, bytes):
        raw = key
    elif isinstance(key, str):
        raw = key.encode()
    else:
        raw = repr(key).encode()
    return zlib.crc32(raw) % n_reducers


@dataclass(frozen=True)
class ClusterModel:
    """Task-time and scheduling model of the MapReduce cluster."""

    nodes: int = 20
    map_slots_per_node: int = 2
    reduce_slots_per_node: int = 2
    #: Fixed per-task cost (scheduling + JVM + setup), seconds.
    task_overhead_s: float = 0.35
    #: Per input record map cost.  Calibrated as a *scale model*: test
    #: inputs are ~10^4 smaller than the paper's, so per-record work is
    #: inflated to keep the Hadoop-era work/overhead ratio of multi-second
    #: map tasks over 64 MB splits.
    map_record_s: float = 1.5e-3
    #: Per input byte map cost (parsing, I/O).
    map_byte_s: float = 1e-7
    #: Per intermediate pair combine/reduce cost.
    shuffle_pair_s: float = 1e-4
    #: Fixed per combine-node cost in the contraction tree.
    combine_overhead_s: float = 5e-3

    @property
    def map_slots(self) -> int:
        return self.nodes * self.map_slots_per_node

    @property
    def reduce_slots(self) -> int:
        return self.nodes * self.reduce_slots_per_node

    def map_task_seconds(
        self, n_bytes: int, n_records: int, compute_weight: float = 1.0
    ) -> float:
        return (
            self.task_overhead_s
            + n_records * self.map_record_s * compute_weight
            + n_bytes * self.map_byte_s
        )

    def combine_seconds(self, n_pairs: int) -> float:
        return self.combine_overhead_s + n_pairs * self.shuffle_pair_s

    def reduce_task_seconds(self, n_pairs: int) -> float:
        return self.task_overhead_s + n_pairs * self.shuffle_pair_s

    def makespan(self, task_times: list[float], slots: int) -> float:
        """Greedy longest-processing-time schedule onto ``slots`` slots."""
        if not task_times:
            return 0.0
        if slots < 1:
            raise ValueError("slots must be >= 1")
        heap = [0.0] * min(slots, len(task_times))
        heapq.heapify(heap)
        for t in sorted(task_times, reverse=True):
            earliest = heapq.heappop(heap)
            heapq.heappush(heap, earliest + t)
        return max(heap)


@dataclass
class RunStats:
    """Execution telemetry of one job run."""

    n_splits: int = 0
    map_tasks_run: int = 0
    map_tasks_reused: int = 0
    combine_nodes_run: int = 0
    combine_nodes_reused: int = 0
    reduce_tasks: int = 0
    map_task_seconds: list[float] = field(default_factory=list)
    reduce_task_seconds: list[float] = field(default_factory=list)
    makespan_seconds: float = 0.0

    @property
    def reuse_fraction(self) -> float:
        total = self.map_tasks_run + self.map_tasks_reused
        return self.map_tasks_reused / total if total else 0.0


@dataclass
class RunResult:
    """Final reduced output plus run telemetry."""

    output: dict[Any, Any]
    stats: RunStats


class MapReduceRuntime:
    """Non-incremental ("plain Hadoop") execution engine."""

    def __init__(self, client: HDFSClient, cluster: ClusterModel | None = None) -> None:
        self.client = client
        self.cluster = cluster or ClusterModel()

    # -- task primitives (shared with the Incoop runtime) --------------------

    def run_map_task(self, job: MapReduceJob, data: bytes) -> dict[int, list[tuple]]:
        """Execute one map task; output partitioned by reducer."""
        partitions: dict[int, list[tuple]] = defaultdict(list)
        for record in job.input_format(data):
            for key, value in job.map_fn(record):
                partitions[partition_of(key, job.n_reducers)].append((key, value))
        if job.combine_fn is not None:
            for p, pairs in partitions.items():
                partitions[p] = self._combine_pairs(job, pairs)
        return dict(partitions)

    @staticmethod
    def _combine_pairs(job: MapReduceJob, pairs: list[tuple]) -> list[tuple]:
        grouped: dict[Any, list] = defaultdict(list)
        for k, v in pairs:
            grouped[k].append(v)
        return [(k, job.combine_fn(k, vs)) for k, vs in grouped.items()]

    def run_reduce_task(self, job: MapReduceJob, pairs: list[tuple]) -> dict[Any, Any]:
        grouped: dict[Any, list] = defaultdict(list)
        for k, v in pairs:
            grouped[k].append(v)
        return {k: job.reduce_fn(k, vs) for k, vs in grouped.items()}

    # -- full job -------------------------------------------------------------

    def run(self, job: MapReduceJob, path: str) -> RunResult:
        """Run the whole job from scratch over the splits of ``path``."""
        stats = RunStats()
        splits = self.client.get_splits(path)
        stats.n_splits = len(splits)

        shuffle: dict[int, list[tuple]] = defaultdict(list)
        for split in splits:
            data = self.client.read_split(split)
            partitions = self.run_map_task(job, data)
            records = len(job.input_format(data))
            stats.map_tasks_run += 1
            stats.map_task_seconds.append(
                self.cluster.map_task_seconds(split.length, records, job.compute_weight)
            )
            for p, pairs in partitions.items():
                shuffle[p].extend(pairs)

        output: dict[Any, Any] = {}
        for p in range(job.n_reducers):
            pairs = shuffle.get(p, [])
            output.update(self.run_reduce_task(job, pairs))
            stats.reduce_tasks += 1
            stats.reduce_task_seconds.append(
                self.cluster.reduce_task_seconds(len(pairs))
            )

        stats.makespan_seconds = self.cluster.makespan(
            stats.map_task_seconds, self.cluster.map_slots
        ) + self.cluster.makespan(stats.reduce_task_seconds, self.cluster.reduce_slots)
        return RunResult(output, stats)
