"""Incremental MapReduce (Incoop) over Inc-HDFS."""

from repro.mapreduce.incoop import IncoopRuntime
from repro.mapreduce.job import MapReduceJob, text_input_format
from repro.mapreduce.memo import MemoServer, memo_key, params_digest
from repro.mapreduce.scheduler import AffinityScheduler, ScheduleOutcome
from repro.mapreduce.runtime import (
    ClusterModel,
    MapReduceRuntime,
    RunResult,
    RunStats,
    partition_of,
)

__all__ = [
    "IncoopRuntime", "MapReduceJob", "text_input_format",
    "MemoServer", "memo_key", "params_digest",
    "ClusterModel", "MapReduceRuntime", "RunResult", "RunStats", "partition_of",
    "AffinityScheduler", "ScheduleOutcome",
]
