"""Redundancy-elimination middlebox pair (§9 future work, after [11]).

The paper's third future-work item: "explore new applications like
middleboxes for bandwidth reduction using network redundancy
elimination".  An **encoder** middlebox at one end of a WAN link chunks
the byte stream with Shredder, replaces chunks whose fingerprints are in
its cache with compact *shim* references, and forwards the mix; the
**decoder** at the other end expands shims from its synchronized cache.

Chunking uses small expected chunks (RE systems operate at packet scale)
and the same deterministic cache policy on both ends, so a shim can
never miss (verified by tests; a miss raises, it is a protocol bug).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.chunking import Chunker, ChunkerConfig
from repro.core.shredder import Shredder, ShredderConfig
from repro.netre.cache import ChunkCache

__all__ = ["Shim", "EncodedStream", "Encoder", "Decoder", "REConfig", "RETunnel"]

KB = 1024

#: Bytes on the wire for one shim reference (fingerprint + length).
SHIM_WIRE_BYTES = 12


def _re_chunker_config() -> ChunkerConfig:
    """Packet-scale chunking: ~512 B expected, bounded 64 B - 4 KB."""
    return ChunkerConfig(mask_bits=9, marker=0x1F3, min_size=64, max_size=4096)


@dataclass(frozen=True)
class REConfig:
    """Tunnel parameters."""

    chunker: ChunkerConfig = field(default_factory=_re_chunker_config)
    cache_bytes: int = 4 * 1024 * KB
    use_gpu: bool = True


@dataclass(frozen=True)
class Shim:
    """Reference to a chunk both caches hold."""

    digest: bytes
    length: int


@dataclass
class EncodedStream:
    """What the encoder puts on the WAN for one message."""

    items: list[Shim | bytes]
    original_bytes: int

    @property
    def wire_bytes(self) -> int:
        return sum(
            SHIM_WIRE_BYTES if isinstance(item, Shim) else len(item)
            for item in self.items
        )

    @property
    def savings(self) -> float:
        if self.original_bytes == 0:
            return 0.0
        return 1.0 - self.wire_bytes / self.original_bytes


class Encoder:
    """Upstream middlebox: chunk, dedup against the cache, emit shims."""

    def __init__(self, config: REConfig | None = None) -> None:
        self.config = config or REConfig()
        self.cache = ChunkCache(self.config.cache_bytes)
        if self.config.use_gpu:
            self._shredder = Shredder(
                ShredderConfig.gpu_streams_memory(chunker=self.config.chunker)
            )
            self._chunk = lambda data: self._shredder.process(data)[0]
        else:
            chunker = Chunker(self.config.chunker)
            self._chunk = chunker.chunk

    def encode(self, payload: bytes) -> EncodedStream:
        items: list[Shim | bytes] = []
        for chunk in self._chunk(payload):
            if chunk.digest in self.cache:
                self.cache.get(chunk.digest)  # LRU touch, mirrored below
                items.append(Shim(chunk.digest, chunk.length))
            else:
                self.cache.insert(chunk.digest, chunk.data)
                items.append(chunk.data)
        return EncodedStream(items, original_bytes=len(payload))

    def close(self) -> None:
        if self.config.use_gpu:
            self._shredder.close()


class Decoder:
    """Downstream middlebox: expand shims from the mirrored cache."""

    def __init__(self, config: REConfig | None = None) -> None:
        self.config = config or REConfig()
        self.cache = ChunkCache(self.config.cache_bytes)

    def decode(self, stream: EncodedStream) -> bytes:
        out = bytearray()
        from repro.core.hashing import chunk_hash

        for item in stream.items:
            if isinstance(item, Shim):
                data = self.cache.get(item.digest)
                if data is None:
                    raise KeyError(
                        f"cache desync: shim {item.digest.hex()[:16]} missing"
                    )
                out.extend(data)
            else:
                self.cache.insert(chunk_hash(item), item)
                out.extend(item)
        return bytes(out)


class RETunnel:
    """Encoder/decoder pair over one WAN link, with savings accounting."""

    def __init__(self, config: REConfig | None = None) -> None:
        self.config = config or REConfig()
        self.encoder = Encoder(self.config)
        self.decoder = Decoder(self.config)
        self.original_bytes = 0
        self.wire_bytes = 0

    def send(self, payload: bytes) -> bytes:
        """Push one message through the tunnel; returns the delivered copy."""
        encoded = self.encoder.encode(payload)
        delivered = self.decoder.decode(encoded)
        if delivered != payload:
            raise AssertionError("RE tunnel corrupted the payload")
        self.original_bytes += encoded.original_bytes
        self.wire_bytes += encoded.wire_bytes
        return delivered

    def send_all(self, payloads: Iterable[bytes]) -> float:
        """Send a message sequence; returns cumulative bandwidth savings."""
        for payload in payloads:
            self.send(payload)
        return self.savings

    @property
    def savings(self) -> float:
        if self.original_bytes == 0:
            return 0.0
        return 1.0 - self.wire_bytes / self.original_bytes

    def close(self) -> None:
        self.encoder.close()
