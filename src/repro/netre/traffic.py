"""Synthetic WAN traffic with controllable redundancy.

Models the workload RE middleboxes target ([9, 11]): a population of
objects with Zipf popularity, repeatedly requested, occasionally updated
— so the byte stream contains both exact repeats (same object again) and
near-repeats (slightly updated object).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.datagen import replace_fraction, seeded_bytes

__all__ = ["TrafficConfig", "TrafficGenerator"]


@dataclass(frozen=True)
class TrafficConfig:
    """Traffic-mix parameters."""

    n_objects: int = 50
    object_size: int = 32 * 1024
    zipf_s: float = 1.2
    #: Probability an access mutates ~2% of the object before transfer.
    update_probability: float = 0.1
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_objects < 1 or self.object_size < 1:
            raise ValueError("n_objects and object_size must be positive")
        if not 0.0 <= self.update_probability <= 1.0:
            raise ValueError("update_probability must be in [0, 1]")


class TrafficGenerator:
    """Deterministic request stream over a mutable object population."""

    def __init__(self, config: TrafficConfig | None = None) -> None:
        self.config = config or TrafficConfig()
        self._objects = [
            seeded_bytes(self.config.object_size, seed=self.config.seed * 1000 + i)
            for i in range(self.config.n_objects)
        ]
        self._rng = np.random.default_rng(self.config.seed)
        self._versions = [0] * self.config.n_objects

    def request(self) -> bytes:
        """One transfer: a (possibly just-updated) popular object."""
        idx = int(
            min(
                self._rng.zipf(self.config.zipf_s) - 1,
                self.config.n_objects - 1,
            )
        )
        if self._rng.random() < self.config.update_probability:
            self._versions[idx] += 1
            self._objects[idx] = replace_fraction(
                self._objects[idx],
                0.02,
                seed=self.config.seed + self._versions[idx] * 7919 + idx,
            )
        return self._objects[idx]

    def requests(self, n: int):
        """Generator of ``n`` transfers."""
        for _ in range(n):
            yield self.request()
