"""Synchronized chunk caches for redundancy elimination.

Both ends of an RE tunnel keep a fingerprint-indexed chunk cache; as long
as both apply the same deterministic insertion/eviction policy to the
same chunk stream, the upstream box can replace a cached chunk with its
fingerprint and the downstream box will always be able to expand it.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["ChunkCache"]


class ChunkCache:
    """Bounded LRU chunk cache keyed by chunk digest.

    Deterministic: the same sequence of ``insert``/``touch`` calls yields
    the same contents on both middleboxes, which is the synchronization
    invariant the protocol relies on (tested).
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[bytes, bytes] = OrderedDict()
        self.used_bytes = 0
        self.evictions = 0

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: bytes) -> bytes | None:
        """Fetch and LRU-touch a cached chunk."""
        data = self._entries.get(digest)
        if data is not None:
            self._entries.move_to_end(digest)
        return data

    def insert(self, digest: bytes, data: bytes) -> None:
        """Insert (or touch) a chunk, evicting LRU entries to fit."""
        if digest in self._entries:
            self._entries.move_to_end(digest)
            return
        if len(data) > self.capacity_bytes:
            return  # never cache chunks larger than the whole cache
        while self.used_bytes + len(data) > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.used_bytes -= len(evicted)
            self.evictions += 1
        self._entries[digest] = data
        self.used_bytes += len(data)

    def state_digest(self) -> int:
        """Order-sensitive hash of contents (for sync checks in tests)."""
        acc = 0
        for digest in self._entries:
            acc = (acc * 1000003) ^ hash(digest)
        return acc
