"""Network redundancy elimination middleboxes (§9 future work)."""

from repro.netre.cache import ChunkCache
from repro.netre.middlebox import (
    Decoder,
    EncodedStream,
    Encoder,
    REConfig,
    RETunnel,
    Shim,
)
from repro.netre.traffic import TrafficConfig, TrafficGenerator

__all__ = [
    "ChunkCache", "Decoder", "EncodedStream", "Encoder", "REConfig",
    "RETunnel", "Shim", "TrafficConfig", "TrafficGenerator",
]
