"""Paper-style table formatting for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["ResultTable", "format_table"]


@dataclass
class ResultTable:
    """One experiment's regenerated rows plus the paper's expectation."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    paper_note: str = ""

    def add(self, *row: object) -> None:
        self.rows.append(row)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 0.01 or abs(value) >= 100000):
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(table: ResultTable) -> str:
    """Render an aligned ASCII table with title and paper note."""
    rows = [[_cell(c) for c in row] for row in table.rows]
    headers = [str(h) for h in table.headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {table.title} =="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    if table.paper_note:
        lines.append(f"paper: {table.paper_note}")
    return "\n".join(lines)
