"""Benchmark harness helpers."""

from repro.bench.reporting import ResultTable, format_table

__all__ = ["ResultTable", "format_table"]
