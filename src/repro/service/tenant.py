"""Per-tenant namespaces over a shared chunk-payload store.

Multi-tenancy splits the backup state along the privacy boundary:

* **Chunk payloads are shared** — content-addressed storage dedups
  across tenants by construction (the same digest is stored once no
  matter who ships it), which is the §2 storage win.
* **The dedup index is tenant-scoped** — each tenant's ship-or-point
  decisions consult only digests *that tenant* has stored.  A tenant
  therefore re-ships a payload some other tenant already holds (the
  store insert is then a no-op), which deliberately closes the classic
  cross-tenant dedup side channel: wire behavior never reveals whether
  another tenant owns a chunk.
* **Recipes are tenant-scoped** — snapshots live in the shared recipe
  store under ``tenant/snapshot`` scoped ids, and the service layer
  only ever resolves ids inside the caller's namespace, so restores,
  listings, and retention are tenant-isolated while cluster-wide GC
  (which marks across *all* recipes) keeps shared payloads safe.

On a disk backend each tenant's index persists under
``data_dir/tenants/<name>/index`` and reopens with the same hit/miss
pattern after a server restart; recipes ride the shared store's own
persistence.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.dedup import DedupIndex
from repro.service.limits import UsageAccount
from repro.store.backend import make_backend

__all__ = ["TenantNamespace", "TenantRegistry"]

SCOPE_SEPARATOR = "/"

#: Tenant names double as directory names and scoped-id prefixes.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def valid_tenant(name: str) -> bool:
    return bool(_TENANT_RE.match(name))


@dataclass
class TenantCounters:
    """Per-tenant service traffic (process lifetime, reset on restart)."""

    sessions: int = 0
    snapshots_begun: int = 0
    snapshots_finished: int = 0
    snapshots_aborted: int = 0
    restores: int = 0
    chunks_received: int = 0
    pointers_received: int = 0
    bytes_received: int = 0
    bytes_restored: int = 0


@dataclass
class TenantNamespace:
    """One tenant's slice of the service: scoped index + counters.

    ``usage`` is the tenant's *durable* quota accounting (unique stored
    logical bytes + chunk count), persisted next to the index so it
    survives a disk-backed restart; ``active_sessions`` is the live
    concurrent-session count the admission path checks per-tenant
    session quotas against.
    """

    name: str
    index: DedupIndex
    counters: TenantCounters = field(default_factory=TenantCounters)
    usage: UsageAccount = field(default_factory=UsageAccount)
    active_sessions: int = 0

    def scoped_id(self, snapshot_id: str) -> str:
        """The shared-store id for this tenant's snapshot."""
        if not snapshot_id or SCOPE_SEPARATOR in snapshot_id:
            raise ValueError(
                f"invalid snapshot id {snapshot_id!r} "
                f"(empty or contains {SCOPE_SEPARATOR!r})"
            )
        return f"{self.name}{SCOPE_SEPARATOR}{snapshot_id}"

    def unscope(self, scoped: str) -> str | None:
        """Back to the tenant-local id; None if it is not this tenant's."""
        prefix = f"{self.name}{SCOPE_SEPARATOR}"
        return scoped[len(prefix):] if scoped.startswith(prefix) else None

    def close(self) -> None:
        self.index.close()


class TenantRegistry:
    """Creates and caches tenant namespaces, durable under ``data_dir``.

    The registry owns only the per-tenant state (dedup indexes); the
    shared payload/recipe store belongs to the service.  On a disk
    backend, namespaces for returning tenants reopen lazily from their
    ``data_dir/tenants/<name>`` directory at first HELLO.
    """

    def __init__(
        self,
        backend: str | None = None,
        data_dir: str | os.PathLike | None = None,
    ) -> None:
        from repro.store.backend import resolve_backend

        self.backend_kind = resolve_backend(backend, data_dir)
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self._tenants: dict[str, TenantNamespace] = {}
        self._closed = False

    def get(self, name: str) -> TenantNamespace:
        """The namespace for ``name``, created (or reopened) on demand."""
        if self._closed:
            raise RuntimeError("tenant registry is closed")
        if not valid_tenant(name):
            raise ValueError(
                f"invalid tenant name {name!r} (want "
                "[A-Za-z0-9][A-Za-z0-9._-]*, at most 64 chars)"
            )
        namespace = self._tenants.get(name)
        if namespace is None:
            index_dir = (
                self.data_dir / "tenants" / name / "index"
                if self.data_dir is not None
                else None
            )
            usage_path = (
                self.data_dir / "tenants" / name / "usage.json"
                if self.data_dir is not None
                else None
            )
            namespace = TenantNamespace(
                name=name,
                index=DedupIndex(make_backend(self.backend_kind, index_dir)),
                usage=UsageAccount(usage_path),
            )
            self._tenants[name] = namespace
        return namespace

    def known_tenants(self) -> list[str]:
        """Tenants seen this process plus durable ones on disk."""
        names = set(self._tenants)
        if self.data_dir is not None:
            root = self.data_dir / "tenants"
            if root.is_dir():
                names.update(p.name for p in root.iterdir() if p.is_dir())
        return sorted(names)

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self):
        return iter(self._tenants.values())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for namespace in self._tenants.values():
            namespace.close()
        self._tenants.clear()
