"""Service health/metrics surface.

One aggregated snapshot per server: the service-level counters kept
here (connections, sessions, frames, backpressure), each tenant's
traffic and dedup effectiveness, the shared store's occupancy, and the
process-wide instrumentation that already existed —
:func:`repro.core.stats.snapshot` merges the scan counters, stage
timers, and every live ``BackendStats``/``NodeStats`` — exported as
JSON (``GET /metrics``), Prometheus-style plain text
(``GET /metrics?format=text``), and a cheap liveness answer
(``GET /health``).

When the store is a cluster, its ``health_snapshot()`` rides along
under ``store.cluster`` — including the integrity-scrub counters
(``scrub_chunks`` / ``scrub_corrupt`` / ``scrub_repaired``) and
``ec_parity_decodes`` for erasure-coded placements.  When a fault plan
is active, ``faults`` reports both sides of the corruption ledger:
``bit_flips_injected`` (what the chaos harness did) next to
``bit_flips_detected`` (what digest verification caught), so a drill
can assert detection keeps pace with injection.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.core import stats as core_stats

__all__ = ["ServiceMetrics", "render_text"]


@dataclass
class ServiceMetrics:
    """Counters the asyncio server maintains (thread-safe increments)."""

    started_at: float = field(default_factory=time.time)
    connections_total: int = 0
    connections_active: int = 0
    sessions_total: int = 0
    sessions_active: int = 0
    sessions_rejected: int = 0
    http_requests: int = 0
    frames_received: int = 0
    frames_sent: int = 0
    errors_sent: int = 0
    #: Backpressure: how often the per-connection reader had to wait on
    #: a full ingest queue (socket reads paused), and the deepest any
    #: connection's queue ever got — bounded by the configured depth.
    backpressure_waits: int = 0
    max_queue_depth: int = 0
    #: Resilience: snapshots parked on abnormal disconnect, successfully
    #: resumed, expired unclaimed, and sessions evicted for stalling.
    sessions_parked: int = 0
    sessions_resumed: int = 0
    sessions_expired: int = 0
    sessions_evicted: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def add(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def observe_queue_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth

    def to_dict(self) -> dict:
        with self._lock:
            data = {
                k: v
                for k, v in asdict(self).items()
                if not k.startswith("_")
            }
        data["uptime_s"] = time.time() - data.pop("started_at")
        return data


def service_snapshot(service) -> dict:
    """The one merged metrics document for a running service."""
    store = service.store
    tenants = {}
    for namespace in service.tenants:
        tenants[namespace.name] = {
            **asdict(namespace.counters),
            "index_chunks": len(namespace.index),
            "dedup": asdict(namespace.index.stats),
        }
    store_doc = {
        "backend": service.storage_kind,
        "store_backend": service.config.store_backend,
        "chunks": store.chunk_count,
        "stored_bytes": store.stored_bytes,
        "snapshots": store.snapshot_count,
    }
    if hasattr(store, "health_snapshot"):
        store_doc["cluster"] = store.health_snapshot()
    doc = {
        "service": service.metrics.to_dict(),
        "store": store_doc,
        "tenants": tenants,
        "core": core_stats.snapshot(),
    }
    plan = getattr(service, "fault_plan", None)
    if plan is not None:
        doc["faults"] = {"spec": plan.describe(), **plan.stats.as_dict()}
    return doc


def render_json(snapshot: dict) -> bytes:
    return json.dumps(snapshot, indent=2, sort_keys=True).encode()


def _flatten(prefix: str, value, out: list[str]) -> None:
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}_{key}" if prefix else str(key), sub, out)
    elif isinstance(value, bool):
        out.append(f"{prefix} {int(value)}")
    elif isinstance(value, (int, float)):
        out.append(f"{prefix} {value}")
    # strings/None are labels, not series — skipped in the text format


def render_text(snapshot: dict) -> bytes:
    """Prometheus-style ``name value`` lines from the nested snapshot."""
    lines: list[str] = []
    _flatten("repro", snapshot, lines)
    return ("\n".join(sorted(lines)) + "\n").encode()
