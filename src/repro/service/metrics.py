"""Service health/metrics surface.

One aggregated snapshot per server: the service-level counters kept
here (connections, sessions, frames, backpressure), each tenant's
traffic and dedup effectiveness, the shared store's occupancy, and the
process-wide instrumentation that already existed —
:func:`repro.core.stats.snapshot` merges the scan counters, stage
timers, and every live ``BackendStats``/``NodeStats`` — exported as
JSON (``GET /metrics``), Prometheus-style plain text
(``GET /metrics?format=text``), and a cheap liveness answer
(``GET /health``).

When the store is a cluster, its ``health_snapshot()`` rides along
under ``store.cluster`` — including the integrity-scrub counters
(``scrub_chunks`` / ``scrub_corrupt`` / ``scrub_repaired``) and
``ec_parity_decodes`` for erasure-coded placements.  When a fault plan
is active, ``faults`` reports both sides of the corruption ledger:
``bit_flips_injected`` (what the chaos harness did) next to
``bit_flips_detected`` (what digest verification caught), so a drill
can assert detection keeps pace with injection.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.core import stats as core_stats

__all__ = ["LatencyHistogram", "ServiceMetrics", "render_text"]


#: Fixed log-scale bucket upper bounds in seconds (factor ~3.16 per
#: step, 100 µs .. 10 s), shared by every histogram so series line up.
LATENCY_BUCKETS_S = (
    0.0001,
    0.000316,
    0.001,
    0.00316,
    0.01,
    0.0316,
    0.1,
    0.316,
    1.0,
    3.16,
    10.0,
)


class LatencyHistogram:
    """Fixed log-scale latency histogram (thread-safe observe).

    Buckets are cumulative-free (each count is *within* the bucket, the
    renderer can cumsum if it wants Prometheus ``le`` semantics); an
    overflow bucket catches anything slower than the last bound.
    """

    __slots__ = ("_lock", "buckets", "count", "total_s", "max_s")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.buckets = [0] * (len(LATENCY_BUCKETS_S) + 1)
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        idx = len(LATENCY_BUCKETS_S)
        for i, bound in enumerate(LATENCY_BUCKETS_S):
            if seconds <= bound:
                idx = i
                break
        with self._lock:
            self.buckets[idx] += 1
            self.count += 1
            self.total_s += seconds
            if seconds > self.max_s:
                self.max_s = seconds

    def as_dict(self) -> dict:
        with self._lock:
            buckets = list(self.buckets)
            count, total_s, max_s = self.count, self.total_s, self.max_s
        doc = {
            "count": count,
            "mean_ms": (total_s / count * 1000.0) if count else 0.0,
            "max_ms": max_s * 1000.0,
        }
        for bound, n in zip(LATENCY_BUCKETS_S, buckets):
            doc[f"le_{bound * 1000.0:g}ms"] = n
        doc["overflow"] = buckets[-1]
        return doc


@dataclass
class ServiceMetrics:
    """Counters the asyncio server maintains (thread-safe increments)."""

    started_at: float = field(default_factory=time.time)
    connections_total: int = 0
    connections_active: int = 0
    sessions_total: int = 0
    sessions_active: int = 0
    sessions_rejected: int = 0
    http_requests: int = 0
    frames_received: int = 0
    frames_sent: int = 0
    errors_sent: int = 0
    #: Backpressure: how often the per-connection reader had to wait on
    #: a full ingest queue (socket reads paused), and the deepest any
    #: connection's queue ever got — bounded by the configured depth.
    backpressure_waits: int = 0
    max_queue_depth: int = 0
    #: Resilience: snapshots parked on abnormal disconnect, successfully
    #: resumed, expired unclaimed, and sessions evicted for stalling.
    sessions_parked: int = 0
    sessions_resumed: int = 0
    sessions_expired: int = 0
    sessions_evicted: int = 0
    #: Overload protection: connections dropped for never finishing the
    #: HELLO handshake inside the pre-auth deadline, failed AUTHs, hard
    #: quota denials, sessions shed at admission, THROTTLE control
    #: frames sent, data frames refused with RETRY_LATER, brownout
    #: entries, decide batches coalesced while browned out, and circuit
    #: breaker opens / fast-failed requests.
    preauth_evictions: int = 0
    auth_failures: int = 0
    quota_rejections: int = 0
    sessions_shed: int = 0
    throttles_sent: int = 0
    retry_later_sent: int = 0
    brownouts: int = 0
    decide_coalesced: int = 0
    breaker_opens: int = 0
    breaker_fastfails: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        # Histograms live outside the dataclass fields (asdict would
        # choke on them); per-op round-trip service time in the worker.
        self.latency = {
            "decide": LatencyHistogram(),
            "chunk": LatencyHistogram(),
            "pointer": LatencyHistogram(),
        }

    def observe_latency(self, op: str, seconds: float) -> None:
        hist = self.latency.get(op)
        if hist is not None:
            hist.observe(seconds)

    def add(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def observe_queue_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth

    def to_dict(self) -> dict:
        with self._lock:
            data = {
                k: v
                for k, v in asdict(self).items()
                if not k.startswith("_")
            }
        data["uptime_s"] = time.time() - data.pop("started_at")
        data["latency"] = {op: h.as_dict() for op, h in self.latency.items()}
        return data


def service_snapshot(service) -> dict:
    """The one merged metrics document for a running service."""
    store = service.store
    tenants = {}
    for namespace in service.tenants:
        tenants[namespace.name] = {
            **asdict(namespace.counters),
            "index_chunks": len(namespace.index),
            "dedup": asdict(namespace.index.stats),
            "usage": namespace.usage.as_dict(),
            "active_sessions": namespace.active_sessions,
        }
    store_doc = {
        "backend": service.storage_kind,
        "store_backend": service.config.store_backend,
        "chunks": store.chunk_count,
        "stored_bytes": store.stored_bytes,
        "snapshots": store.snapshot_count,
    }
    if hasattr(store, "health_snapshot"):
        store_doc["cluster"] = store.health_snapshot()
    doc = {
        "service": service.metrics.to_dict(),
        "store": store_doc,
        "tenants": tenants,
        "core": core_stats.snapshot(),
    }
    limits = getattr(service, "limits", None)
    if limits is not None and limits.active:
        doc["limits"] = limits.describe()
    quota = getattr(service, "quota", None)
    if quota is not None and quota.active:
        doc["quota"] = quota.as_dict()
    breaker = getattr(service, "breaker", None)
    if breaker is not None:
        doc["breaker"] = breaker.describe()
    doc["service"]["brownout_active"] = bool(
        getattr(service, "brownout_active", False)
    )
    plan = getattr(service, "fault_plan", None)
    if plan is not None:
        doc["faults"] = {"spec": plan.describe(), **plan.stats.as_dict()}
    return doc


def render_json(snapshot: dict) -> bytes:
    return json.dumps(snapshot, indent=2, sort_keys=True).encode()


def _flatten(prefix: str, value, out: list[str]) -> None:
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}_{key}" if prefix else str(key), sub, out)
    elif isinstance(value, bool):
        out.append(f"{prefix} {int(value)}")
    elif isinstance(value, (int, float)):
        out.append(f"{prefix} {value}")
    # strings/None are labels, not series — skipped in the text format


def render_text(snapshot: dict) -> bytes:
    """Prometheus-style ``name value`` lines from the nested snapshot."""
    lines: list[str] = []
    _flatten("repro", snapshot, lines)
    return ("\n".join(sorted(lines)) + "\n").encode()
