"""The asyncio backup service: multi-tenant daemon over the wire API.

Serves the agent protocol (:mod:`repro.service.protocol`) on one
listening socket.  Connections self-identify in the first five bytes:
the ``SHRD1`` magic starts an agent session, an HTTP verb gets the
health/metrics surface, anything else is dropped with one ERROR frame.

**Backpressure is structural, not advisory.**  Each agent connection
runs two coroutines joined by a *bounded* ``asyncio.Queue``: the reader
parses frames and ``await put()``s them — when the ingest worker falls
behind, the queue fills, the put blocks, and the reader simply stops
reading the socket, so kernel TCP flow control pushes back on the
client; nothing server-side ever buffers more than ``queue_depth``
frames per connection.  The same bounded-queue discipline the in-process
pipeline uses (`pipeline_chunks`' pinned-ring role) extended across the
wire.

**Admission control**: at most ``max_sessions`` concurrent agent
sessions; excess HELLOs receive ``ERROR[BUSY]`` and a clean close.

**Store discipline**: all index/store mutations run on the event-loop
thread — the service is the paper's single Store thread, made explicit;
concurrency lives in the sockets, the clients' local chunk+hash
pipelines, and the batched shapes of every store call.  Dedup decisions
are tenant-scoped (see :mod:`repro.service.tenant`); payloads and
recipes live on the shared single-node store or cluster, so a server
restarted on the same ``data_dir`` resumes serving the same snapshots.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.backup.agent import ShredderAgent
from repro.backup.store import ChunkStore
from repro.faults import FAULTS_ENV, FaultPlan
from repro.service import protocol as wire
from repro.service.limits import (
    AuthRegistry,
    CircuitBreaker,
    ServiceLimits,
    TenantQuota,
)
from repro.service.metrics import (
    ServiceMetrics,
    render_json,
    render_text,
    service_snapshot,
)
from repro.service.protocol import Err, Msg
from repro.service.tenant import TenantRegistry
from repro.store.backend import resolve_backend
from repro.store.cluster import ChunkStoreCluster
from repro.store.health import HealthPolicy
from repro.store.lookup import LookupCostModel
from repro.store.schemes import make_scheme

__all__ = ["ServiceConfig", "BackupService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Backup-service configuration."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``service.port``).
    port: int = 0
    #: Storage backend for all shared + tenant state ("memory"|"disk";
    #: ``None`` follows ``REPRO_STORE_BACKEND``).
    backend: str | None = None
    #: Root for disk-backed state (``site/`` or ``cluster/`` +
    #: ``tenants/<name>/index``); ``None`` + disk = ephemeral tempdirs.
    data_dir: str | None = None
    #: Backup-site payload store: "single" | "cluster".
    store_backend: str = "single"
    cluster_nodes: int = 4
    placement: str = "replicated"  # "vanilla" | "striped" | "replicated" | "ec"
    replication: int = 2
    stripe_width: int = 4
    #: Erasure-coding geometry (placement="ec").
    ec_k: int = 4
    ec_m: int = 2
    #: Stored items the cluster's background scrubber re-verifies per
    #: heartbeat (0 disables; needs ``heartbeat_s``).
    scrub_batch: int = 0
    #: Bounded cluster retry budgets; ``None`` keeps the defaults.
    read_attempts: int | None = None
    put_attempts: int | None = None
    lookup_batch_size: int = 128
    #: Concurrent agent sessions admitted before ERROR[BUSY].
    max_sessions: int = 64
    #: Bounded ingest queue per connection — the backpressure limit.
    queue_depth: int = 4
    #: In-flight unacked batches the server advertises to clients.
    window: int = 4
    max_frame: int = wire.DEFAULT_MAX_FRAME
    #: RESTORE_DATA piece size.
    restore_piece: int = 1 << 20
    #: Chaos plan spec (see :mod:`repro.faults`); ``None`` follows the
    #: ``REPRO_FAULTS`` env var, ``""`` forces faults off.
    faults: str | None = None
    #: Evict a session that sends no frame for this long (seconds);
    #: ``None`` disables slow-client eviction.
    stall_timeout_s: float | None = None
    #: How long an interrupted mid-backup session stays parked for
    #: RESUME before its snapshot is aborted; 0 disables parking.
    resume_grace_s: float = 30.0
    #: On shutdown, wait up to this long for sessions with open
    #: snapshots to finish before cancelling them.
    drain_s: float = 5.0
    #: Cluster heartbeat period (seconds); ``None`` disables the beat.
    #: Only meaningful with ``store_backend="cluster"``.
    heartbeat_s: float | None = None
    #: Shared-secret auth file (``tenant: secret`` lines); ``None``
    #: serves anonymously, exactly the pre-v3 behaviour.
    auth_file: str | None = None
    #: Per-tenant rate limits (``None`` = unlimited): sustained inbound
    #: payload bytes/s and data-frame ops/s, enforced with THROTTLE
    #: pacing first and RETRY_LATER shedding past ``shed_debt_s``.
    rate_bytes_per_s: float | None = None
    rate_ops_per_s: float | None = None
    #: Whole-service rate ceilings shared by every tenant.
    global_bytes_per_s: float | None = None
    global_ops_per_s: float | None = None
    #: A frame whose pacing debt would exceed this many seconds is shed
    #: (typed RETRY_LATER + park) instead of paced.
    shed_debt_s: float = 5.0
    #: Per-tenant hard quotas (``None`` = unlimited): stored payload
    #: bytes, stored chunk count, concurrent sessions.
    quota_bytes: int | None = None
    quota_chunks: int | None = None
    quota_sessions: int | None = None
    #: Session slots held back from backup traffic so restores — a
    #: tenant trying to get data *back* — always shed last; 0 disables.
    restore_reserve: int = 0
    #: Pre-auth deadline: a connection must deliver magic + HELLO
    #: within this many seconds or it is dropped without ever holding a
    #: session slot; ``None`` disables (pre-v3 behaviour).
    hello_timeout_s: float | None = 5.0
    #: Brownout triggers (``None`` disables that trigger; both None =
    #: no monitor task): sustained event-loop lag in seconds, or total
    #: frames queued across sessions.
    brownout_lag_s: float | None = None
    brownout_queue_frames: int | None = None
    #: How long a triggered brownout holds after the signal clears.
    brownout_hold_s: float = 2.0
    #: Store-path circuit breaker: consecutive store failures before it
    #: opens (``None`` disables), and the open-state cooldown.
    breaker_threshold: int | None = None
    breaker_cooldown_s: float = 1.0

    def __post_init__(self) -> None:
        resolve_backend(self.backend, self.data_dir)  # raises on bad kind
        if self.store_backend not in ("single", "cluster"):
            raise ValueError(f"unknown store backend {self.store_backend!r}")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.restore_piece < 1:
            raise ValueError("restore_piece must be >= 1")
        if self.stall_timeout_s is not None and self.stall_timeout_s <= 0:
            raise ValueError("stall_timeout_s must be positive (or None)")
        if self.resume_grace_s < 0:
            raise ValueError("resume_grace_s must be >= 0")
        if self.drain_s < 0:
            raise ValueError("drain_s must be >= 0")
        if self.heartbeat_s is not None and self.heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive (or None)")
        if self.ec_k < 1 or self.ec_m < 0:
            raise ValueError("ec geometry wants k >= 1 and m >= 0")
        if self.scrub_batch < 0:
            raise ValueError("scrub_batch must be >= 0")
        if self.read_attempts is not None and self.read_attempts < 1:
            raise ValueError("read_attempts must be >= 1")
        if self.put_attempts is not None and self.put_attempts < 1:
            raise ValueError("put_attempts must be >= 1")
        for name in (
            "rate_bytes_per_s",
            "rate_ops_per_s",
            "global_bytes_per_s",
            "global_ops_per_s",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None)")
        if self.shed_debt_s <= 0:
            raise ValueError("shed_debt_s must be positive")
        for name in ("quota_bytes", "quota_chunks", "quota_sessions"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 (or None)")
        if not 0 <= self.restore_reserve < self.max_sessions:
            raise ValueError("restore_reserve must be in [0, max_sessions)")
        if self.hello_timeout_s is not None and self.hello_timeout_s <= 0:
            raise ValueError("hello_timeout_s must be positive (or None)")
        if self.brownout_lag_s is not None and self.brownout_lag_s <= 0:
            raise ValueError("brownout_lag_s must be positive (or None)")
        if (
            self.brownout_queue_frames is not None
            and self.brownout_queue_frames < 1
        ):
            raise ValueError("brownout_queue_frames must be >= 1 (or None)")
        if self.brownout_hold_s <= 0:
            raise ValueError("brownout_hold_s must be positive")
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1 (or None)")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker_cooldown_s must be positive")


@dataclass
class _Parked:
    """An interrupted session's open snapshot, waiting for RESUME."""

    scoped: str
    tenant: str
    applied_frames: int
    handle: asyncio.TimerHandle


class SessionError(Exception):
    """Protocol-level failure inside a session; carries the wire code."""

    def __init__(self, code: Err, message: str, *, fatal: bool = False) -> None:
        super().__init__(message)
        self.code = code
        #: Fatal errors close the connection after the ERROR frame
        #: (corrupted payloads mean an untrustworthy peer); non-fatal
        #: ones leave the session usable.
        self.fatal = fatal


class _WireChunk:
    """Chunk-shaped record for the tenant index's batched probe."""

    __slots__ = ("digest", "length", "offset")

    def __init__(self, digest: bytes, length: int, offset: int) -> None:
        self.digest = digest
        self.length = length
        self.offset = offset


class BackupService:
    """Long-running multi-tenant backup daemon."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = cfg = config or ServiceConfig()
        self.storage_kind = resolve_backend(cfg.backend, cfg.data_dir)
        data_dir = Path(cfg.data_dir) if cfg.data_dir is not None else None
        spec = cfg.faults
        if spec is None:
            spec = os.environ.get(FAULTS_ENV, "").strip()
        self.fault_plan = FaultPlan.parse(spec) if spec else None
        if cfg.store_backend == "cluster":
            self.store = ChunkStoreCluster(
                n_nodes=cfg.cluster_nodes,
                scheme=make_scheme(
                    cfg.placement,
                    replicas=cfg.replication,
                    stripe_width=cfg.stripe_width,
                    ec_k=cfg.ec_k,
                    ec_m=cfg.ec_m,
                ),
                health=HealthPolicy(scrub_batch=cfg.scrub_batch),
                read_attempts=cfg.read_attempts,
                put_attempts=cfg.put_attempts,
                batch_size=cfg.lookup_batch_size,
                cost_model=LookupCostModel(),
                backend=self.storage_kind,
                data_dir=data_dir / "cluster" if data_dir is not None else None,
                fault_plan=self.fault_plan,
            )
        else:
            self.store = ChunkStore(
                backend=self.storage_kind,
                data_dir=data_dir / "site" if data_dir is not None else None,
            )
        self.agent = ShredderAgent(store=self.store)
        self.registry = TenantRegistry(
            backend=self.storage_kind, data_dir=data_dir
        )
        self.metrics = ServiceMetrics()
        self.auth = (
            AuthRegistry.load(cfg.auth_file) if cfg.auth_file else None
        )
        self.limits = ServiceLimits(
            tenant_bytes_per_s=cfg.rate_bytes_per_s,
            tenant_ops_per_s=cfg.rate_ops_per_s,
            global_bytes_per_s=cfg.global_bytes_per_s,
            global_ops_per_s=cfg.global_ops_per_s,
        )
        self.quota = TenantQuota(
            max_bytes=cfg.quota_bytes,
            max_chunks=cfg.quota_chunks,
            max_sessions=cfg.quota_sessions,
        )
        self.breaker = (
            CircuitBreaker(cfg.breaker_threshold, cfg.breaker_cooldown_s)
            if cfg.breaker_threshold is not None
            else None
        )
        #: Brownout: while ``time.monotonic() < _brownout_until`` the
        #: service widens decide batches, defers scrubbing, and hands
        #: new sessions a window of 1.
        self._brownout_until = 0.0
        self._brownout_task: asyncio.Task | None = None
        self._server: asyncio.base_events.Server | None = None
        self._session_seq = 0
        self._conn_seq = 0
        self._active_sessions = 0
        self._conn_tasks: set[asyncio.Task] = set()
        self._sessions: set["_Session"] = set()
        #: Interrupted mid-backup sessions keyed by resume token, each
        #: holding its open snapshot until RESUME or grace expiry.
        self._parked: dict[str, _Parked] = {}
        self._heartbeat_task: asyncio.Task | None = None
        self._closed = False
        self.port: int | None = cfg.port if cfg.port else None

    # -- lifecycle -----------------------------------------------------

    @property
    def tenants(self):
        return iter(self.registry)

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` is then concrete."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.heartbeat_s is not None and hasattr(self.store, "heartbeat"):
            self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())
        if (
            self.config.brownout_lag_s is not None
            or self.config.brownout_queue_frames is not None
        ):
            self._brownout_task = asyncio.create_task(self._brownout_monitor())

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self, drain_s: float | None = None) -> None:
        """Stop accepting, drain, drop connections, close state owners.

        Drain-on-shutdown: sessions with an open snapshot get up to
        ``drain_s`` (default from config) to finish before they are
        cancelled — a SIGTERM mid-backup prefers a finished snapshot
        over a parked one.  Idle connections are not waited for.
        """
        for attr in ("_heartbeat_task", "_brownout_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, attr, None)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        drain = self.config.drain_s if drain_s is None else drain_s
        if drain > 0 and self._busy_sessions():
            loop = asyncio.get_running_loop()
            deadline = loop.time() + drain
            while self._busy_sessions() and loop.time() < deadline:
                await asyncio.sleep(0.02)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.close()

    def _busy_sessions(self) -> int:
        """Sessions mid-backup (an open snapshot = unfinished work)."""
        return sum(1 for s in self._sessions if s.open_scoped is not None)

    async def _heartbeat_loop(self) -> None:
        period = self.config.heartbeat_s
        while True:
            await asyncio.sleep(period)
            try:
                # Brownout defers the integrity-scrub slice: failure
                # detection/repair stays on the beat, background
                # re-verification yields its cycles to live traffic.
                self.store.heartbeat(scrub=not self.brownout_active)
            except Exception:  # noqa: BLE001 — the beat must outlive faults
                pass

    # -- brownout (graceful degradation) -------------------------------

    @property
    def brownout_active(self) -> bool:
        return time.monotonic() < self._brownout_until

    def enter_brownout(self, hold_s: float | None = None) -> None:
        """Degrade for ``hold_s`` (config default): widen decide batches,
        defer scrubbing, advertise window=1 to new sessions.  Called by
        the monitor on lag/queue pressure; public for drills and ops."""
        if not self.brownout_active:
            self.metrics.add(brownouts=1)
        hold = self.config.brownout_hold_s if hold_s is None else hold_s
        self._brownout_until = max(
            self._brownout_until, time.monotonic() + hold
        )

    async def _brownout_monitor(self) -> None:
        cfg = self.config
        tick = 0.05
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(tick)
            lag = loop.time() - before - tick
            queued = sum(s.queue.qsize() for s in self._sessions)
            if (
                cfg.brownout_lag_s is not None and lag > cfg.brownout_lag_s
            ) or (
                cfg.brownout_queue_frames is not None
                and queued >= cfg.brownout_queue_frames
            ):
                self.enter_brownout()

    def close(self) -> None:
        """Synchronous state teardown (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # Parked sessions die with the process: cancel their expiry
        # timers (the abort below covers their snapshots).
        for parked in self._parked.values():
            parked.handle.cancel()
        self._parked.clear()
        # Abort any sessions a dead connection left open: no recipe is
        # ever written for a half-shipped snapshot.
        for scoped in self.agent.open_snapshots:
            self.agent.abort_snapshot(scoped)
        self.registry.close()
        self.store.close()

    # -- session parking (mid-backup resume) ---------------------------

    def _park(self, session: "_Session") -> None:
        """Hold an interrupted session's snapshot for the grace window."""
        token = session.resume_token
        stale = self._parked.pop(token, None)
        if stale is not None:  # token reuse: the old hold is forfeit
            stale.handle.cancel()
        handle = asyncio.get_running_loop().call_later(
            self.config.resume_grace_s, self._expire_parked, token
        )
        self._parked[token] = _Parked(
            scoped=session.open_scoped,
            tenant=session.namespace.name,
            applied_frames=session.applied_frames,
            handle=handle,
        )
        session.open_scoped = None  # ownership moved to the parking lot
        self.metrics.add(sessions_parked=1)

    def _expire_parked(self, token: str) -> None:
        parked = self._parked.pop(token, None)
        if parked is None:
            return
        try:
            self.agent.abort_snapshot(parked.scoped)
        except ValueError:
            pass
        try:
            self.registry.get(parked.tenant).counters.snapshots_aborted += 1
        except ValueError:
            pass
        self.metrics.add(sessions_expired=1)

    async def __aenter__(self) -> "BackupService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- connection dispatch -------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.metrics.add(connections_total=1, connections_active=1)
        try:
            try:
                # Pre-auth deadline: the 5 magic bytes must arrive fast
                # or the connection never gets near a session slot — a
                # slowloris that dials and sends nothing costs only a
                # parked socket for hello_timeout_s.
                first = await asyncio.wait_for(
                    reader.readexactly(len(wire.MAGIC)),
                    self.config.hello_timeout_s,
                )
            except asyncio.IncompleteReadError:
                return
            except asyncio.TimeoutError:
                self.metrics.add(preauth_evictions=1)
                return
            if first == wire.MAGIC:
                await self._agent_session(reader, writer)
            elif first[:4] in (b"GET ", b"HEAD", b"POST"):
                await self._http_request(first, reader, writer)
            else:
                await self._send_error(
                    writer, Err.BAD_FRAME, "expected SHRD1 magic or HTTP"
                )
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # peer vanished; per-session cleanup already ran
        except asyncio.CancelledError:
            # stop() cancelled us; end in a normal (not cancelled) state
            # so the stream protocol's done-callback stays quiet.
            pass
        finally:
            self.metrics.add(connections_active=-1)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send_frame(self, writer, msg: Msg, payload: bytes = b"") -> None:
        writer.write(wire.encode_frame(msg, payload))
        await writer.drain()
        self.metrics.add(frames_sent=1)

    async def _send_error(self, writer, code: Err, message: str) -> None:
        self.metrics.add(errors_sent=1)
        await self._send_frame(writer, Msg.ERROR, wire.encode_error(code, message))

    # -- agent sessions ------------------------------------------------

    async def _agent_session(self, reader, writer) -> None:
        cfg = self.config
        try:
            msg, payload = await asyncio.wait_for(
                wire.read_frame(reader, cfg.max_frame), cfg.hello_timeout_s
            )
        except asyncio.TimeoutError:
            # Magic arrived but HELLO never did: drop pre-auth, the
            # connection never held a session slot.
            self.metrics.add(preauth_evictions=1)
            return
        except wire.ProtocolError as exc:
            # Garbage where the HELLO frame belongs (e.g. a flood
            # connection): one typed error, then the door closes.
            await self._send_error(writer, Err.BAD_FRAME, str(exc))
            return
        self.metrics.add(frames_received=1)
        if msg is not Msg.HELLO:
            await self._send_error(writer, Err.BAD_FRAME, "expected HELLO")
            return
        try:
            version, tenant_name, _client_name, auth, purpose = (
                wire.decode_hello(payload)
            )
        except wire.ProtocolError as exc:
            await self._send_error(writer, Err.BAD_FRAME, str(exc))
            return
        if version not in (2, wire.PROTOCOL_VERSION):
            await self._send_error(
                writer,
                Err.VERSION_MISMATCH,
                f"server speaks protocol {wire.PROTOCOL_VERSION}, "
                f"client sent {version}",
            )
            return
        if self.auth is not None and not self.auth.verify(tenant_name, auth):
            self.metrics.add(auth_failures=1)
            await self._send_error(
                writer, Err.UNAUTHORIZED, "bad tenant or auth token"
            )
            return
        # Priority-aware shedding: backup traffic only gets the slots
        # left after the restore reserve; restores shed last.
        limit = cfg.max_sessions
        if purpose == wire.PURPOSE_BACKUP and cfg.restore_reserve > 0:
            limit = cfg.max_sessions - cfg.restore_reserve
        if self._active_sessions >= limit:
            self.metrics.add(sessions_rejected=1)
            if limit < cfg.max_sessions:
                self.metrics.add(sessions_shed=1)
            await self._send_error(
                writer,
                Err.BUSY,
                f"session limit {limit} reached",
            )
            return
        try:
            namespace = self.registry.get(tenant_name)
        except ValueError as exc:
            await self._send_error(writer, Err.BAD_TENANT, str(exc))
            return
        if (
            self.quota.max_sessions is not None
            and namespace.active_sessions >= self.quota.max_sessions
        ):
            self.metrics.add(quota_rejections=1)
            await self._send_error(
                writer,
                Err.QUOTA_EXCEEDED,
                f"tenant session quota {self.quota.max_sessions} reached",
            )
            return
        self._session_seq += 1
        self._conn_seq += 1
        session_id = f"{tenant_name}-{self._session_seq}"
        self._active_sessions += 1
        self.metrics.add(sessions_total=1, sessions_active=1)
        namespace.counters.sessions += 1
        namespace.active_sessions += 1
        session = _Session(self, namespace, reader, writer)
        session.peer_version = version
        if self.fault_plan is not None:
            session.wire_faults = self.fault_plan.wire_injector(
                f"conn-{self._conn_seq}"
            )
        self._sessions.add(session)
        try:
            await self._send_frame(
                writer,
                Msg.HELLO_OK,
                wire.encode_hello_ok(
                    session_id,
                    # Brownout narrows new sessions to stop-and-wait.
                    1 if self.brownout_active else cfg.window,
                ),
            )
            await session.run()
        finally:
            self._active_sessions -= 1
            self.metrics.add(sessions_active=-1)
            namespace.active_sessions -= 1
            self._sessions.discard(session)
            session.release()

    # -- HTTP surface --------------------------------------------------

    async def _http_request(self, first: bytes, reader, writer) -> None:
        self.metrics.add(http_requests=1)
        try:
            rest = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            rest = b"\r\n\r\n"
        request_line = (first + rest).split(b"\r\n", 1)[0].decode(
            "latin-1", "replace"
        )
        parts = request_line.split()
        target = parts[1] if len(parts) > 1 else "/"
        path, _, query = target.partition("?")
        if path == "/health":
            body = render_json(
                {
                    "status": "ok",
                    "sessions_active": self._active_sessions,
                    "port": self.port,
                    "store_backend": self.config.store_backend,
                    "backend": self.storage_kind,
                }
            )
            content_type = "application/json"
            status = "200 OK"
        elif path == "/metrics":
            snapshot = service_snapshot(self)
            if "format=text" in query or path.endswith(".txt"):
                body = render_text(snapshot)
                content_type = "text/plain; charset=utf-8"
            else:
                body = render_json(snapshot)
                content_type = "application/json"
            status = "200 OK"
        else:
            body = b'{"error": "unknown path; try /health or /metrics"}'
            content_type = "application/json"
            status = "404 Not Found"
        writer.write(
            (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
        )
        writer.write(body)
        await writer.drain()


class _Session:
    """One agent connection: bounded-queue reader + ingest worker."""

    _EOF = object()

    def __init__(self, service: BackupService, namespace, reader, writer) -> None:
        self.service = service
        self.namespace = namespace
        self.reader = reader
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(
            maxsize=service.config.queue_depth
        )
        #: Scoped id of the one snapshot this session may have open.
        self.open_scoped: str | None = None
        #: Client-generated resume token from BEGIN/RESUME ("" = the
        #: client opted out of parking).
        self.resume_token: str = ""
        #: Ship frames (CHUNK_BATCH / POINTER_BATCH) fully applied for
        #: the open snapshot — the resume high-water mark.
        self.applied_frames: int = 0
        #: Reader verdict: True only for an EOF on a frame boundary (a
        #: deliberate close — abandon, don't park).
        self.clean_eof: bool = False
        #: Per-connection chaos injector (None when no plan is active).
        self.wire_faults = None
        #: Negotiated protocol version; v2 peers never receive THROTTLE
        #: frames (they still get server-side pacing).
        self.peer_version: int = wire.PROTOCOL_VERSION
        #: Pushback slot for brownout decide-coalescing: the first
        #: non-matching frame drained while grouping waits here.
        self._pending = None

    def abort_open(self) -> None:
        if self.open_scoped is not None:
            try:
                self.service.agent.abort_snapshot(self.open_scoped)
            except ValueError:
                pass  # finished/aborted in the worker already
            self.namespace.counters.snapshots_aborted += 1
            self.open_scoped = None

    def release(self) -> None:
        """End-of-connection disposition for an open snapshot.

        A snapshot interrupted *abnormally* (reset, mid-frame EOF,
        eviction, fatal error) is parked for the resume grace window;
        a clean frame-boundary EOF means the client walked away, so the
        snapshot aborts exactly as in protocol v1.
        """
        if self.open_scoped is None:
            return
        cfg = self.service.config
        if (
            self.clean_eof
            or not self.resume_token
            or cfg.resume_grace_s <= 0
            or self.service._closed
        ):
            self.abort_open()
            return
        self.service._park(self)

    async def run(self) -> None:
        worker = asyncio.create_task(self._worker())
        try:
            await self._read_loop()
        finally:
            # Wake the worker with EOF if the reader died first; it
            # drains what was queued, then exits.
            if not worker.done():
                await self.queue.put(self._EOF)
            try:
                await worker
            except asyncio.CancelledError:
                raise


    async def _read_loop(self) -> None:
        metrics = self.service.metrics
        cfg = self.service.config
        max_frame = cfg.max_frame
        injector = self.wire_faults
        while True:
            try:
                frame = await asyncio.wait_for(
                    wire.read_frame(self.reader, max_frame),
                    cfg.stall_timeout_s,
                )
            except asyncio.TimeoutError:
                # Slow-client eviction: the worker sends ERROR[EVICTED];
                # an open snapshot parks, so the client can resume.
                await self.queue.put(
                    (
                        "evicted",
                        f"no frame in {cfg.stall_timeout_s:g}s; session evicted",
                    )
                )
                return
            except asyncio.IncompleteReadError as exc:
                # EOF on the frame-header boundary = deliberate close;
                # EOF mid-frame = the peer died mid-send.
                self.clean_eof = not exc.partial and exc.expected == 5
                return
            except (ConnectionResetError, BrokenPipeError):
                return  # abnormal: release() parks any open snapshot
            except wire.ProtocolError as exc:
                await self.queue.put(("protocol-error", str(exc)))
                return
            metrics.add(frames_received=1)
            if injector is not None:
                action = injector.frame_action()
                if action is not None:
                    if action[0] == "drop":
                        # Kill the connection before the frame applies —
                        # the client sees a reset and must resume.
                        self.writer.transport.abort()
                        return
                    if action[0] == "stall":
                        await asyncio.sleep(action[1])
                    elif action[0] == "garble":
                        frame = (frame[0], injector.garble(frame[1]))
            if self.queue.full():
                # The bounded queue is the backpressure seam: this put
                # blocks, this coroutine stops reading the socket, and
                # TCP flow control does the rest.
                metrics.add(backpressure_waits=1)
            await self.queue.put(frame)
            metrics.observe_queue_depth(self.queue.qsize())

    async def _worker(self) -> None:
        while True:
            if self._pending is not None:
                item, self._pending = self._pending, None
            else:
                item = await self.queue.get()
            if item is self._EOF:
                return
            if isinstance(item, tuple) and item[0] == "protocol-error":
                await self.service._send_error(
                    self.writer, Err.BAD_FRAME, item[1]
                )
                return
            if isinstance(item, tuple) and item[0] == "evicted":
                self.service.metrics.add(sessions_evicted=1)
                try:
                    await self.service._send_error(
                        self.writer, Err.EVICTED, item[1]
                    )
                except (ConnectionResetError, BrokenPipeError):
                    pass
                return
            msg, payload = item
            try:
                # Overload gates first: rate pacing/shedding and the
                # store-path breaker answer before any work is done.
                await self._admit_frame(msg, payload)
                await self._dispatch(msg, payload)
            except SessionError as exc:
                await self.service._send_error(self.writer, exc.code, str(exc))
                if exc.fatal:
                    # Fatal = this connection is untrustworthy, not the
                    # snapshot: park it now (when the client can resume)
                    # so a clean-looking teardown of the dead socket
                    # cannot demote the park to an abort.
                    self.release()
                    return
            except (ConnectionResetError, BrokenPipeError):
                return
            except Exception as exc:  # noqa: BLE001 — wire boundary
                try:
                    await self.service._send_error(
                        self.writer, Err.INTERNAL, f"{type(exc).__name__}: {exc}"
                    )
                except (ConnectionResetError, BrokenPipeError):
                    pass
                # Same disposition as a fatal SessionError: a frame that
                # explodes in decode (e.g. garbled on the wire) condemns
                # the connection, not the snapshot — park it so the
                # client can resume; token-less v1 clients still abort.
                self.release()
                return

    # -- overload gates ------------------------------------------------

    #: Frames charged against the rate limiters (inbound data plane).
    _DATA_FRAMES = frozenset(
        {Msg.DIGEST_BATCH, Msg.CHUNK_BATCH, Msg.POINTER_BATCH}
    )
    #: Frames that touch the payload store (circuit-breaker scope).
    _STORE_FRAMES = frozenset(
        {
            Msg.DIGEST_BATCH,
            Msg.CHUNK_BATCH,
            Msg.POINTER_BATCH,
            Msg.FINISH,
            Msg.RESTORE,
        }
    )
    #: Latency-histogram series per round-trip kind.
    _LATENCY_OPS = {
        Msg.DIGEST_BATCH: "decide",
        Msg.CHUNK_BATCH: "chunk",
        Msg.POINTER_BATCH: "pointer",
    }

    async def _admit_frame(self, msg: Msg, payload: bytes) -> None:
        """Rate + breaker gate, run before any frame does work.

        Shedding is deliberately connection-terminating (fatal): a
        non-fatal ERROR in place of a BATCH_OK would desynchronise the
        applied-frames high-water mark resume relies on, so the refused
        session parks instead and the client replays over RESUME.
        """
        service = self.service
        breaker = service.breaker
        if breaker is not None and msg in self._STORE_FRAMES:
            if not breaker.allow():
                service.metrics.add(breaker_fastfails=1)
                raise SessionError(
                    Err.RETRY_LATER,
                    "store path degraded; "
                    f"retry in {breaker.retry_after():.2f}s",
                    fatal=True,
                )
        if msg in self._DATA_FRAMES and service.limits.active:
            delay = service.limits.charge(self.namespace.name, len(payload))
            if delay > service.config.shed_debt_s:
                # Refund so the shed frame's tokens don't penalise the
                # tenant's next (post-backoff) attempt.
                service.limits.refund(self.namespace.name, len(payload))
                service.metrics.add(retry_later_sent=1)
                raise SessionError(
                    Err.RETRY_LATER,
                    f"over rate limit; retry in {delay:.2f}s",
                    fatal=True,
                )
            if delay > 0:
                await self._throttle(delay, "rate limit")

    async def _throttle(self, delay: float, reason: str) -> None:
        """Pace the worker by ``delay``, telling a v3 peer why first.

        The THROTTLE control frame rides ahead of the paced reply (the
        FIFO reply order is untouched); the server-side sleep is the
        enforcement, the frame is the client's hint to self-pace.
        """
        service = self.service
        if self.peer_version >= 3:
            service.metrics.add(throttles_sent=1)
            await service._send_frame(
                self.writer, Msg.THROTTLE, wire.encode_throttle(delay, reason)
            )
        await asyncio.sleep(delay)

    # -- frame handlers ------------------------------------------------

    async def _dispatch(self, msg: Msg, payload: bytes) -> None:
        try:
            handler = {
                Msg.BEGIN_SNAPSHOT: self._on_begin,
                Msg.RESUME: self._on_resume,
                Msg.DIGEST_BATCH: self._on_digest_batch,
                Msg.CHUNK_BATCH: self._on_chunk_batch,
                Msg.POINTER_BATCH: self._on_pointer_batch,
                Msg.FINISH: self._on_finish,
                Msg.RESTORE: self._on_restore,
                Msg.LIST_SNAPSHOTS: self._on_list,
            }[msg]
        except KeyError:
            raise SessionError(
                Err.BAD_FRAME, f"unexpected {msg.name} frame", fatal=True
            ) from None
        service = self.service
        if (
            msg is Msg.DIGEST_BATCH
            and service.brownout_active
            and payload[:1] == bytes([wire.MODE_DECIDE])
            and self.open_scoped is not None
        ):
            group = self._drain_decide_group(payload)
            if len(group) > 1:
                await self._on_digest_group(group)
                return
        breaker = service.breaker if msg in self._STORE_FRAMES else None
        op = self._LATENCY_OPS.get(msg)
        start = time.monotonic()
        try:
            await handler(payload)
        except (ConnectionResetError, BrokenPipeError):
            raise
        except OSError as exc:
            # Store-path failure (includes injected faults).  With the
            # breaker configured this feeds it and answers a typed
            # RETRY_LATER; without it the generic INTERNAL path (the
            # pre-v3 behaviour) handles the frame.
            if breaker is None:
                raise
            before_opens = breaker.opens
            breaker.record_failure()
            if breaker.opens > before_opens:
                service.metrics.add(breaker_opens=1)
            raise SessionError(
                Err.RETRY_LATER,
                f"store failure: {type(exc).__name__}: {exc}",
                fatal=True,
            ) from exc
        else:
            if breaker is not None:
                breaker.record_success()
            if op is not None:
                service.metrics.observe_latency(
                    op, time.monotonic() - start
                )

    def _drain_decide_group(self, first_payload: bytes) -> list[bytes]:
        """Brownout batch widening: drain consecutive queued decide
        batches so one index pass serves them all.  The first frame
        that doesn't match waits in ``_pending`` for the next worker
        iteration — nothing is reordered."""
        group = [first_payload]
        while True:
            try:
                item = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                return group
            if (
                isinstance(item, tuple)
                and len(item) == 2
                and item[0] is Msg.DIGEST_BATCH
                and isinstance(item[1], (bytes, bytearray))
                and item[1][:1] == bytes([wire.MODE_DECIDE])
            ):
                group.append(item[1])
            else:
                self._pending = item
                return group

    def _require_open(self) -> str:
        if self.open_scoped is None:
            raise SessionError(
                Err.UNKNOWN_SNAPSHOT, "no snapshot is open on this session"
            )
        return self.open_scoped

    async def _on_begin(self, payload: bytes) -> None:
        snapshot_id, token = wire.decode_begin(payload)
        if self.open_scoped is not None:
            raise SessionError(
                Err.SNAPSHOT_EXISTS,
                "a snapshot is already open on this session",
            )
        try:
            scoped = self.namespace.scoped_id(snapshot_id)
        except ValueError as exc:
            raise SessionError(Err.BAD_FRAME, str(exc)) from None
        try:
            self.service.store.get_recipe(scoped)
        except KeyError:
            pass
        else:
            raise SessionError(
                Err.SNAPSHOT_EXISTS, f"snapshot {snapshot_id!r} already stored"
            )
        try:
            self.service.agent.begin_snapshot(scoped)
        except ValueError as exc:
            raise SessionError(Err.SNAPSHOT_EXISTS, str(exc)) from None
        self.open_scoped = scoped
        self.resume_token = token
        self.applied_frames = 0
        self.namespace.counters.snapshots_begun += 1
        await self.service._send_frame(self.writer, Msg.BEGIN_OK)

    async def _on_resume(self, payload: bytes) -> None:
        snapshot_id, token = wire.decode_resume(payload)
        if self.open_scoped is not None:
            raise SessionError(
                Err.SNAPSHOT_EXISTS,
                "a snapshot is already open on this session",
            )
        service = self.service
        parked = service._parked.get(token)
        if parked is None:
            # A reset client can redial faster than the dying session
            # finishes draining its queue and parks: give the teardown
            # a moment to land before declaring the token unknown.
            loop = asyncio.get_running_loop()
            deadline = loop.time() + min(
                2.0, service.config.resume_grace_s
            )
            while parked is None and loop.time() < deadline:
                await asyncio.sleep(0.01)
                parked = service._parked.get(token)
        if (
            parked is None
            or parked.tenant != self.namespace.name
            or self.namespace.unscope(parked.scoped) != snapshot_id
        ):
            raise SessionError(
                Err.RESUME_UNKNOWN,
                f"no parked session for snapshot {snapshot_id!r}",
            )
        del service._parked[token]
        parked.handle.cancel()
        self.open_scoped = parked.scoped
        self.resume_token = token
        self.applied_frames = parked.applied_frames
        service.metrics.add(sessions_resumed=1)
        log = service.agent.open_log(parked.scoped)
        await service._send_frame(
            self.writer,
            Msg.RESUME_OK,
            wire.encode_resume_ok(
                self.applied_frames,
                log.chunks_received,
                log.pointers_received,
                log.bytes_received,
            ),
        )

    def _decide_flags(self, digests, lengths) -> list[bool]:
        """Tenant-scoped dedup decision, exactly the in-process
        single-store shape: lookup_or_insert on the tenant index, then
        force a re-ship when the index outlived the payload (GC or
        restart skew) so pointers can never dangle."""
        store = self.service.store
        counters = self.namespace.counters
        chunks = []
        offset = counters.bytes_received
        for digest, length in zip(digests, lengths):
            chunks.append(_WireChunk(digest, length, offset))
            offset += length
        decisions = [
            is_dup
            for is_dup, _ in self.namespace.index.lookup_or_insert_batch(
                chunks
            )
        ]
        dup_digests = [d for d, is_dup in zip(digests, decisions) if is_dup]
        if dup_digests:
            present = dict(zip(dup_digests, store.has_chunks(dup_digests)))
            decisions = [
                is_dup and present.get(digest, True)
                for digest, is_dup in zip(digests, decisions)
            ]
        return decisions

    async def _on_digest_batch(self, payload: bytes) -> None:
        mode, digests, lengths = wire.decode_digest_batch(payload)
        if mode == wire.MODE_QUERY:
            # Read-only membership against the *shared* payload store:
            # the remote has_chunk — it reveals only chunks the caller
            # could fetch anyway (its own restores go through it too).
            flags = self.service.store.has_chunks(digests)
        else:
            self._require_open()
            flags = self._decide_flags(digests, lengths)
        await self.service._send_frame(
            self.writer, Msg.DIGEST_REPLY, wire.encode_digest_reply(flags)
        )

    async def _on_digest_group(self, payloads: list[bytes]) -> None:
        """Brownout: N queued decide batches in one widened index pass,
        answered with N in-order DIGEST_REPLYs (the wire contract is
        untouched — only the store-call shape widens)."""
        service = self.service
        service.metrics.add(decide_coalesced=len(payloads) - 1)
        self._require_open()
        counts: list[int] = []
        all_digests: list[bytes] = []
        all_lengths: list[int] = []
        for payload in payloads:
            mode, digests, lengths = wire.decode_digest_batch(payload)
            if mode != wire.MODE_DECIDE:  # pragma: no cover — pre-filtered
                raise SessionError(Err.BAD_FRAME, "mixed modes in group")
            counts.append(len(digests))
            all_digests.extend(digests)
            all_lengths.extend(lengths)
        flags = self._decide_flags(all_digests, all_lengths)
        offset = 0
        for count in counts:
            await service._send_frame(
                self.writer,
                Msg.DIGEST_REPLY,
                wire.encode_digest_reply(flags[offset : offset + count]),
            )
            offset += count

    async def _on_chunk_batch(self, payload: bytes) -> None:
        scoped = self._require_open()
        items = wire.decode_chunk_batch(payload)
        received = sum(len(data) for _, data in items)
        quota = self.service.quota
        deny = quota.deny_reason(self.namespace.usage, received, len(items))
        if deny is not None:
            # Hard ceiling: refuse *before* anything lands, fatally —
            # the parked session can resume once quota is raised, but
            # replaying the same frame will be denied again, so the
            # tenant can never store past its cap.
            self.service.metrics.add(quota_rejections=1)
            raise SessionError(Err.QUOTA_EXCEEDED, deny, fatal=True)
        try:
            self.service.agent.receive_chunks(scoped, items)
        except ValueError as exc:
            # A digest/payload mismatch means bytes were corrupted in
            # flight (or the peer lies about content): fail loudly and
            # drop the connection — nothing of this batch was stored.
            raise SessionError(Err.DIGEST_MISMATCH, str(exc), fatal=True) from None
        self.applied_frames += 1
        # Durable usage accounting, charged exactly once per *applied*
        # frame: the resume protocol's applied-frames high-water mark
        # means a re-shipped frame a parked session replays was never
        # applied (and so never charged) the first time.
        self.namespace.usage.charge(received, len(items))
        counters = self.namespace.counters
        counters.chunks_received += len(items)
        counters.bytes_received += received
        await self.service._send_frame(
            self.writer, Msg.BATCH_OK, wire.encode_batch_ok(len(items), received)
        )

    async def _on_pointer_batch(self, payload: bytes) -> None:
        scoped = self._require_open()
        digests = wire.decode_pointer_batch(payload)
        try:
            self.service.agent.receive_pointers(scoped, digests)
        except KeyError as exc:
            raise SessionError(
                Err.UNKNOWN_CHUNK, str(exc.args[0]), fatal=True
            ) from None
        self.applied_frames += 1
        self.namespace.counters.pointers_received += len(digests)
        await self.service._send_frame(
            self.writer, Msg.BATCH_OK, wire.encode_batch_ok(len(digests), 0)
        )

    async def _on_finish(self, payload: bytes) -> None:
        snapshot_id = wire.decode_snapshot_id(payload)
        scoped = self._require_open()
        if self.namespace.unscope(scoped) != snapshot_id:
            raise SessionError(
                Err.UNKNOWN_SNAPSHOT,
                f"snapshot {snapshot_id!r} is not the open one",
            )
        log = self.service.agent.finish_snapshot(scoped)
        self.open_scoped = None
        self.resume_token = ""
        self.applied_frames = 0
        self.namespace.counters.snapshots_finished += 1
        await self.service._send_frame(
            self.writer,
            Msg.FINISH_OK,
            wire.encode_finish_ok(
                log.chunks_received, log.pointers_received, log.bytes_received
            ),
        )

    async def _on_restore(self, payload: bytes) -> None:
        snapshot_id = wire.decode_snapshot_id(payload)
        try:
            scoped = self.namespace.scoped_id(snapshot_id)
        except ValueError as exc:
            raise SessionError(Err.BAD_FRAME, str(exc)) from None
        try:
            recipe = self.service.store.get_recipe(scoped)
            data = self.service.store.restore(scoped)
        except KeyError:
            raise SessionError(
                Err.UNKNOWN_SNAPSHOT,
                f"no snapshot {snapshot_id!r} for tenant "
                f"{self.namespace.name!r}",
            ) from None
        counters = self.namespace.counters
        counters.restores += 1
        counters.bytes_restored += len(data)
        await self.service._send_frame(
            self.writer,
            Msg.RESTORE_BEGIN,
            wire.encode_restore_begin(len(data), len(recipe.digests)),
        )
        piece = self.service.config.restore_piece
        view = memoryview(data)
        for off in range(0, len(view), piece):
            await self.service._send_frame(
                self.writer, Msg.RESTORE_DATA, bytes(view[off : off + piece])
            )
        await self.service._send_frame(self.writer, Msg.RESTORE_END)

    async def _on_list(self, payload: bytes) -> None:
        if payload:
            raise SessionError(Err.BAD_FRAME, "LIST_SNAPSHOTS takes no payload")
        mine = []
        for scoped in self.service.store.snapshot_ids():
            local = self.namespace.unscope(scoped)
            if local is not None:
                mine.append(local)
        await self.service._send_frame(
            self.writer, Msg.SNAPSHOT_LIST, wire.encode_snapshot_list(mine)
        )
