"""Overload protection: rate limits, quotas, auth, and a breaker.

The service's admission-control seam (PR 6) only counted sessions; this
module gives it teeth so the backup site can absorb the paper's bursty,
concurrent client load without falling over:

* :class:`TokenBucket` — deterministic debt-model rate limiter (an
  over-draw is allowed and returns the pacing delay that repays it), so
  the server can *pace* traffic instead of dropping it, and shed only
  when the debt grows past a threshold;
* :class:`ServiceLimits` — per-tenant and global bytes/s + ops/s
  buckets behind one ``charge()`` call made per inbound data frame;
* :class:`TenantQuota` / :class:`UsageAccount` — hard per-tenant
  ceilings (stored payload bytes, chunk count, concurrent sessions)
  over durable usage accounting: the account persists to
  ``data_dir/tenants/<name>/usage.json`` with atomic replace, so a
  disk-backed restart resumes billing exactly where it stopped;
* :class:`AuthRegistry` — shared-secret HMAC authentication for the
  HELLO handshake, loaded from a ``tenant: secret`` file
  (``serve --auth-file``); clients present
  ``auth_token(secret, tenant)``;
* :class:`CircuitBreaker` — consecutive-failure breaker on the store
  path: a degraded store turns into fast typed ``RETRY_LATER`` errors
  instead of sessions piling up behind a dying disk.

Everything takes an injectable monotonic clock so tests are exact.
"""

from __future__ import annotations

import hmac
import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "AuthRegistry",
    "CircuitBreaker",
    "ServiceLimits",
    "TenantQuota",
    "TokenBucket",
    "UsageAccount",
    "auth_token",
]


# ----------------------------------------------------------------------
# rate limiting
# ----------------------------------------------------------------------


class TokenBucket:
    """A debt-model token bucket: ``rate`` tokens/s, ``burst`` capacity.

    :meth:`charge` always *takes* the tokens and returns the delay (in
    seconds) the caller must pace for before the bucket is repaid —
    0.0 while within burst.  Allowing debt keeps single oversized
    frames (larger than the burst) servable: they are simply paced
    proportionally instead of being unpassable.
    """

    def __init__(self, rate: float, burst: float | None = None, *, clock=time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else float(rate)
        if self.burst <= 0:
            raise ValueError("burst must be positive")
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        if now > self._stamp:
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
        self._stamp = now

    def charge(self, n: float) -> float:
        """Take ``n`` tokens; return the pacing delay that repays them."""
        self._refill()
        self._tokens -= n
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate

    def refund(self, n: float) -> None:
        """Return tokens for work that was shed instead of performed."""
        self._refill()
        self._tokens = min(self.burst, self._tokens + n)

    @property
    def debt_s(self) -> float:
        """Current pacing debt in seconds (0.0 when within burst)."""
        self._refill()
        return 0.0 if self._tokens >= 0 else -self._tokens / self.rate


class ServiceLimits:
    """Per-tenant + global rate buckets behind one charge call.

    ``None`` rates disable that bucket; with every rate ``None`` the
    instance is inert (``active`` is False and ``charge`` is free).
    Buckets burst for ``burst_s`` seconds of their sustained rate, so
    short spikes pass unpaced and only sustained overload paces.
    """

    def __init__(
        self,
        *,
        tenant_bytes_per_s: float | None = None,
        tenant_ops_per_s: float | None = None,
        global_bytes_per_s: float | None = None,
        global_ops_per_s: float | None = None,
        burst_s: float = 2.0,
        clock=time.monotonic,
    ) -> None:
        if burst_s <= 0:
            raise ValueError("burst_s must be positive")
        self.tenant_bytes_per_s = tenant_bytes_per_s
        self.tenant_ops_per_s = tenant_ops_per_s
        self.burst_s = burst_s
        self._clock = clock
        self._global: list[tuple[TokenBucket, str]] = []
        if global_bytes_per_s is not None:
            self._global.append(
                (self._bucket(global_bytes_per_s), "bytes")
            )
        if global_ops_per_s is not None:
            self._global.append((self._bucket(global_ops_per_s), "ops"))
        #: tenant -> [(bucket, unit)], created lazily at first charge.
        self._tenants: dict[str, list[tuple[TokenBucket, str]]] = {}

    def _bucket(self, rate: float) -> TokenBucket:
        return TokenBucket(rate, rate * self.burst_s, clock=self._clock)

    @property
    def active(self) -> bool:
        return bool(
            self._global
            or self.tenant_bytes_per_s is not None
            or self.tenant_ops_per_s is not None
        )

    def _tenant_buckets(self, tenant: str) -> list[tuple[TokenBucket, str]]:
        buckets = self._tenants.get(tenant)
        if buckets is None:
            buckets = []
            if self.tenant_bytes_per_s is not None:
                buckets.append((self._bucket(self.tenant_bytes_per_s), "bytes"))
            if self.tenant_ops_per_s is not None:
                buckets.append((self._bucket(self.tenant_ops_per_s), "ops"))
            self._tenants[tenant] = buckets
        return buckets

    def charge(self, tenant: str, nbytes: int, ops: int = 1) -> float:
        """Charge one inbound data frame; return the pacing delay (s).

        The delay is the *maximum* across all touched buckets — pacing
        for the slowest constraint repays every other one too.
        """
        delay = 0.0
        for bucket, unit in self._tenant_buckets(tenant):
            delay = max(bucket.charge(nbytes if unit == "bytes" else ops), delay)
        for bucket, unit in self._global:
            delay = max(bucket.charge(nbytes if unit == "bytes" else ops), delay)
        return delay

    def refund(self, tenant: str, nbytes: int, ops: int = 1) -> None:
        """Give back a charge for a frame that was shed, not applied."""
        for bucket, unit in self._tenant_buckets(tenant):
            bucket.refund(nbytes if unit == "bytes" else ops)
        for bucket, unit in self._global:
            bucket.refund(nbytes if unit == "bytes" else ops)

    def describe(self) -> dict:
        """Configured rates for the metrics surface."""
        doc = {
            "tenant_bytes_per_s": self.tenant_bytes_per_s,
            "tenant_ops_per_s": self.tenant_ops_per_s,
            "burst_s": self.burst_s,
        }
        for bucket, unit in self._global:
            doc[f"global_{unit}_per_s"] = bucket.rate
        return doc


# ----------------------------------------------------------------------
# quotas + durable usage accounting
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TenantQuota:
    """Hard per-tenant ceilings; ``None`` means unlimited."""

    #: Stored payload bytes (unique-to-tenant chunk bytes received).
    max_bytes: int | None = None
    #: Stored chunk count.
    max_chunks: int | None = None
    #: Concurrent sessions.
    max_sessions: int | None = None

    def __post_init__(self) -> None:
        for name in ("max_bytes", "max_chunks", "max_sessions"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 (or None)")

    @property
    def active(self) -> bool:
        return (
            self.max_bytes is not None
            or self.max_chunks is not None
            or self.max_sessions is not None
        )

    def deny_reason(
        self, usage: "UsageAccount", add_bytes: int, add_chunks: int
    ) -> str | None:
        """Why storing ``add_*`` on top of ``usage`` must be refused."""
        if (
            self.max_bytes is not None
            and usage.stored_bytes + add_bytes > self.max_bytes
        ):
            return (
                f"byte quota exceeded: {usage.stored_bytes} stored + "
                f"{add_bytes} requested > {self.max_bytes} allowed"
            )
        if (
            self.max_chunks is not None
            and usage.chunks + add_chunks > self.max_chunks
        ):
            return (
                f"chunk quota exceeded: {usage.chunks} stored + "
                f"{add_chunks} requested > {self.max_chunks} allowed"
            )
        return None

    def as_dict(self) -> dict:
        return {
            "max_bytes": self.max_bytes,
            "max_chunks": self.max_chunks,
            "max_sessions": self.max_sessions,
        }


class UsageAccount:
    """Durable per-tenant usage: stored payload bytes + chunk count.

    With a ``path`` every mutation is persisted by atomic replace
    (write tmp, ``os.replace``), so the account a restarted service
    reopens is exactly the last committed state — quota enforcement
    survives the restart, and a half-written file can never be read
    back (the replace is all-or-nothing).  Without a path the account
    is process-local (memory backend).
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.stored_bytes = 0
        self.chunks = 0
        if self.path is not None and self.path.exists():
            try:
                doc = json.loads(self.path.read_text())
                self.stored_bytes = int(doc.get("stored_bytes", 0))
                self.chunks = int(doc.get("chunks", 0))
            except (ValueError, OSError):
                # A corrupt account file zeroes the account rather than
                # bricking the tenant; the next charge rewrites it.
                self.stored_bytes = 0
                self.chunks = 0

    def charge(self, nbytes: int, nchunks: int) -> None:
        self.stored_bytes += nbytes
        self.chunks += nchunks
        self._save()

    def _save(self) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self.as_dict()))
        os.replace(tmp, self.path)

    def as_dict(self) -> dict:
        return {"stored_bytes": self.stored_bytes, "chunks": self.chunks}


# ----------------------------------------------------------------------
# authentication
# ----------------------------------------------------------------------


def auth_token(secret: str, tenant: str) -> str:
    """The HELLO auth token for ``tenant`` under a shared ``secret``."""
    return hmac.new(
        secret.encode("utf-8"), tenant.encode("utf-8"), hashlib.sha256
    ).hexdigest()


class AuthRegistry:
    """Tenant -> shared secret, verified as an HMAC token on HELLO.

    File format (``serve --auth-file``): one ``tenant: secret`` (or
    ``tenant = secret``) per line, ``#`` comments and blank lines
    ignored.  Verification is constant-time and refuses unknown
    tenants with the same answer as a bad token, so the handshake
    leaks nothing about which tenants exist.
    """

    def __init__(self, secrets: dict[str, str]) -> None:
        for tenant, secret in secrets.items():
            if not tenant or not secret:
                raise ValueError("auth entries need a tenant and a secret")
        self._secrets = dict(secrets)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "AuthRegistry":
        secrets: dict[str, str] = {}
        for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            for sep in (":", "="):
                tenant, found, secret = line.partition(sep)
                if found:
                    break
            if not found:
                raise ValueError(
                    f"{path}:{lineno}: expected 'tenant: secret', got {line!r}"
                )
            tenant, secret = tenant.strip(), secret.strip()
            if not tenant or not secret:
                raise ValueError(f"{path}:{lineno}: empty tenant or secret")
            if tenant in secrets:
                raise ValueError(f"{path}:{lineno}: duplicate tenant {tenant!r}")
            secrets[tenant] = secret
        if not secrets:
            raise ValueError(f"{path}: no auth entries")
        return cls(secrets)

    def __len__(self) -> int:
        return len(self._secrets)

    def token(self, tenant: str) -> str:
        """The expected token for a known tenant (KeyError otherwise)."""
        return auth_token(self._secrets[tenant], tenant)

    def verify(self, tenant: str, token: str) -> bool:
        secret = self._secrets.get(tenant)
        if secret is None:
            # Same cost + same answer as a wrong token: compare against
            # a dummy so timing can't probe for tenant existence.
            hmac.compare_digest(auth_token("\x00missing", tenant), token)
            return False
        return hmac.compare_digest(auth_token(secret, tenant), token)


# ----------------------------------------------------------------------
# store-path circuit breaker
# ----------------------------------------------------------------------


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe.

    Closed: everything passes.  ``threshold`` consecutive failures open
    it for ``cooldown_s``; while open, :meth:`allow` is False and
    callers answer fast ``RETRY_LATER`` instead of queueing on a sick
    store.  After the cooldown one probe is allowed through
    (half-open); its success closes the breaker, its failure re-opens
    for another cooldown.
    """

    def __init__(
        self, threshold: int = 8, cooldown_s: float = 1.0, *, clock=time.monotonic
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self._probe_out = False
        self.opens = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown_s:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May a store operation proceed right now?"""
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probe_out:
            self._probe_out = True
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next half-open probe is worth trying."""
        if self._opened_at is None:
            return 0.0
        return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probe_out = False

    def record_failure(self) -> None:
        self._failures += 1
        self._probe_out = False
        if self._opened_at is not None or self._failures >= self.threshold:
            if self._opened_at is None:
                self.opens += 1
            self._opened_at = self._clock()

    def describe(self) -> dict:
        return {
            "state": self.state,
            "threshold": self.threshold,
            "cooldown_s": self.cooldown_s,
            "opens": self.opens,
        }
