"""Client side of the backup service: async agent + sync drop-in.

:class:`AsyncBackupClient` speaks the batched wire protocol and runs
the paper's client-side pipeline across the network: a feeder thread
drives :meth:`~repro.core.shredder.Shredder.pipeline_batches` (the
bounded scan ‖ hash pipeline), and the event loop overlaps that local
work with shipping — digests of batch *i+1* go out while the chunk
payloads of batch *i* are still in flight, bounded by the server's
advertised ack window.  Replies are strictly in-order per connection
(the protocol's contract), so the client never tags requests; it just
counts outstanding acks.

Dedup decisions are **source-side**: the client sends one DIGEST_BATCH
(decide mode) per pipeline batch and only ships payloads the server's
tenant index has not seen — duplicate chunks cross the wire as
pointer-sized digests, which is the §7 bandwidth story end to end.

:class:`RemoteAgent` wraps the async client behind the synchronous
:class:`~repro.backup.agent.ShredderAgent` surface (``begin_snapshot`` /
``receive_chunk`` / ``receive_pointer`` / ``finish_snapshot`` /
``restore`` + a ``store``-shaped proxy), so existing in-process callers
can point at a remote service without restructuring.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.backup.agent import TransferLog
from repro.backup.server import _default_backup_chunker
from repro.core.hashing import chunk_hash
from repro.core.shredder import Shredder, ShredderConfig
from repro.service import protocol as wire
from repro.service.protocol import Err, Msg, RemoteError

__all__ = ["AsyncBackupClient", "RemoteAgent", "RemoteBackupReport"]

#: Digested batches buffered between the feeder thread and the sender.
_FEED_DEPTH = 4


@dataclass
class RemoteBackupReport:
    """Outcome of one remote backup, measured at the client."""

    snapshot_id: str
    total_bytes: int
    n_chunks: int
    duplicate_chunks: int
    #: Chunk payload bytes that actually crossed the wire.
    shipped_bytes: int
    elapsed_s: float
    transfer: TransferLog = field(default_factory=TransferLog)

    @property
    def dedup_fraction(self) -> float:
        return self.duplicate_chunks / self.n_chunks if self.n_chunks else 0.0

    @property
    def ingest_mib_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.total_bytes / self.elapsed_s / (1 << 20)


class AsyncBackupClient:
    """One authenticated session against a running BackupService."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        tenant: str,
        session_id: str,
        window: int,
        max_frame: int = wire.DEFAULT_MAX_FRAME,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.tenant = tenant
        self.session_id = session_id
        #: Max unacked CHUNK/POINTER batches in flight (server's hint).
        self.window = max(1, window)
        self.max_frame = max_frame
        self._closed = False

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        client_name: str = "",
        max_frame: int = wire.DEFAULT_MAX_FRAME,
    ) -> "AsyncBackupClient":
        """Dial, identify (magic + HELLO), and complete the handshake."""
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(wire.MAGIC)
        writer.write(
            wire.encode_frame(Msg.HELLO, wire.encode_hello(tenant, client_name))
        )
        await writer.drain()
        try:
            msg, payload = await wire.read_frame(reader, max_frame)
            if msg is Msg.ERROR:
                raise RemoteError(*wire.decode_error(payload))
            if msg is not Msg.HELLO_OK:
                raise wire.ProtocolError(f"expected HELLO_OK, got {msg.name}")
        except BaseException:
            writer.close()
            raise
        _version, window, session_id = wire.decode_hello_ok(payload)
        return cls(
            reader,
            writer,
            tenant=tenant,
            session_id=session_id,
            window=window,
            max_frame=max_frame,
        )

    # -- low-level request/reply ---------------------------------------

    async def _send(self, msg: Msg, payload: bytes = b"") -> None:
        self.writer.write(wire.encode_frame(msg, payload))
        await self.writer.drain()

    async def _recv(self) -> tuple[Msg, bytes]:
        msg, payload = await wire.read_frame(self.reader, self.max_frame)
        if msg is Msg.ERROR:
            raise RemoteError(*wire.decode_error(payload))
        return msg, payload

    async def _expect(self, expected: Msg) -> bytes:
        msg, payload = await self._recv()
        if msg is not expected:
            raise wire.ProtocolError(
                f"expected {expected.name}, got {msg.name}"
            )
        return payload

    async def _rpc(self, msg: Msg, payload: bytes, expected: Msg) -> bytes:
        await self._send(msg, payload)
        return await self._expect(expected)

    # -- session verbs -------------------------------------------------

    async def begin_snapshot(self, snapshot_id: str) -> None:
        await self._rpc(
            Msg.BEGIN_SNAPSHOT,
            wire.encode_snapshot_id(snapshot_id),
            Msg.BEGIN_OK,
        )

    async def finish_snapshot(self, snapshot_id: str) -> TransferLog:
        payload = await self._rpc(
            Msg.FINISH, wire.encode_snapshot_id(snapshot_id), Msg.FINISH_OK
        )
        chunks, pointers, received = wire.decode_finish_ok(payload)
        return TransferLog(
            chunks_received=chunks,
            pointers_received=pointers,
            bytes_received=received,
        )

    async def decide_chunks(self, digests, lengths) -> list[bool]:
        """Tenant dedup decision (and index insert) for an open snapshot."""
        payload = await self._rpc(
            Msg.DIGEST_BATCH,
            wire.encode_digest_batch(list(digests), list(lengths)),
            Msg.DIGEST_REPLY,
        )
        return wire.decode_digest_reply(payload)

    async def has_chunks(self, digests) -> list[bool]:
        """Read-only membership probe against the shared payload store."""
        payload = await self._rpc(
            Msg.DIGEST_BATCH,
            wire.encode_digest_batch(list(digests)),
            Msg.DIGEST_REPLY,
        )
        return wire.decode_digest_reply(payload)

    async def ship_chunks(self, items) -> tuple[int, int]:
        """Ship ``(digest, payload)`` pairs; returns (items, bytes) acked."""
        payload = await self._rpc(
            Msg.CHUNK_BATCH, wire.encode_chunk_batch(list(items)), Msg.BATCH_OK
        )
        return wire.decode_batch_ok(payload)

    async def ship_pointers(self, digests) -> int:
        payload = await self._rpc(
            Msg.POINTER_BATCH,
            wire.encode_pointer_batch(list(digests)),
            Msg.BATCH_OK,
        )
        return wire.decode_batch_ok(payload)[0]

    async def list_snapshots(self) -> list[str]:
        payload = await self._rpc(
            Msg.LIST_SNAPSHOTS, b"", Msg.SNAPSHOT_LIST
        )
        return wire.decode_snapshot_list(payload)

    async def restore(self, snapshot_id: str) -> bytes:
        await self._send(Msg.RESTORE, wire.encode_snapshot_id(snapshot_id))
        payload = await self._expect(Msg.RESTORE_BEGIN)
        total_bytes, _n_chunks = wire.decode_restore_begin(payload)
        pieces: list[bytes] = []
        received = 0
        while True:
            msg, payload = await self._recv()
            if msg is Msg.RESTORE_END:
                break
            if msg is not Msg.RESTORE_DATA:
                raise wire.ProtocolError(
                    f"expected RESTORE_DATA, got {msg.name}"
                )
            pieces.append(payload)
            received += len(payload)
        if received != total_bytes:
            raise wire.ProtocolError(
                f"restore announced {total_bytes} bytes, streamed {received}"
            )
        return b"".join(pieces)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncBackupClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- the pipelined backup ------------------------------------------

    async def backup(
        self,
        data: bytes,
        snapshot_id: str,
        *,
        shredder: Shredder | None = None,
        batch_chunks: int | None = None,
    ) -> RemoteBackupReport:
        """Chunk, hash, deduplicate, and ship one snapshot.

        Local chunk+hash runs on the Shredder's own threads (a feeder
        thread pulls :meth:`~repro.core.shredder.Shredder
        .pipeline_batches`); this coroutine overlaps it with the wire:
        per batch one DIGEST_BATCH decides source-side, payload misses
        ship as CHUNK_BATCH and hits as POINTER_BATCH, with up to
        ``window`` unacked batches in flight while the next scan tile is
        still being hashed.
        """
        own_shredder = shredder is None
        if own_shredder:
            shredder = Shredder(
                ShredderConfig.gpu_streams_memory(
                    chunker=_default_backup_chunker()
                )
            )
        t0 = time.perf_counter()
        n_chunks = duplicates = shipped = 0
        unacked: deque[int] = deque()  # in-flight unacked ship frames

        async def drain_one() -> None:
            ack = await self._expect(Msg.BATCH_OK)
            wire.decode_batch_ok(ack)
            unacked.popleft()

        await self.begin_snapshot(snapshot_id)
        try:
            async for batch in _feed(shredder, data, batch_chunks):
                n_chunks += len(batch)
                # Decision round trip: all prior batch acks drain first
                # (replies are FIFO), so at most `window` ship frames
                # ride ahead of this request.
                while unacked:
                    await drain_one()
                flags = await self.decide_chunks(
                    [c.digest for c in batch], [c.length for c in batch]
                )
                # Ship consecutive same-decision runs — order of arrival
                # at the agent is recipe order, identical to in-process.
                i = 0
                while i < len(batch):
                    is_dup = flags[i]
                    j = i
                    while j < len(batch) and flags[j] == is_dup:
                        j += 1
                    run = batch[i:j]
                    if is_dup:
                        duplicates += len(run)
                        await self._send(
                            Msg.POINTER_BATCH,
                            wire.encode_pointer_batch(
                                [c.digest for c in run]
                            ),
                        )
                    else:
                        run_bytes = sum(c.length for c in run)
                        shipped += run_bytes
                        await self._send(
                            Msg.CHUNK_BATCH,
                            wire.encode_chunk_batch(
                                [(c.digest, c.data) for c in run]
                            ),
                        )
                    unacked.append(1)
                    while len(unacked) >= self.window:
                        await drain_one()
                    i = j
            while unacked:
                await drain_one()
            transfer = await self.finish_snapshot(snapshot_id)
        finally:
            if own_shredder:
                shredder.close()
        return RemoteBackupReport(
            snapshot_id=snapshot_id,
            total_bytes=len(data),
            n_chunks=n_chunks,
            duplicate_chunks=duplicates,
            shipped_bytes=shipped,
            elapsed_s=time.perf_counter() - t0,
            transfer=transfer,
        )


async def _feed(shredder: Shredder, data: bytes, batch_chunks: int | None):
    """Async-iterate digested pipeline batches produced on a thread.

    The feeder thread blocks in the Shredder's bounded pipeline; a small
    bounded queue carries batches onto the event loop, so chunk+hash for
    batch *i+1* overlaps the shipping of batch *i* without unbounded
    buffering.  The stop event keeps the thread from wedging on a full
    queue if the consumer dies mid-stream.
    """
    loop = asyncio.get_running_loop()
    queue: asyncio.Queue = asyncio.Queue(maxsize=_FEED_DEPTH)
    stop = threading.Event()
    _END = object()

    def put(item) -> bool:
        # Schedule the enqueue exactly once and poll that same future.
        # A timed-out run_coroutine_threadsafe future is NOT cancelled —
        # the put coroutine stays pending and lands the item when a slot
        # frees, so rescheduling on timeout would enqueue it twice.
        try:
            future = asyncio.run_coroutine_threadsafe(queue.put(item), loop)
        except RuntimeError:
            return False  # loop is closing
        while True:
            try:
                future.result(timeout=0.1)
                return True
            except concurrent.futures.TimeoutError:
                if stop.is_set():
                    future.cancel()
                    return False
            except (concurrent.futures.CancelledError, RuntimeError):
                return False

    def run() -> None:
        try:
            for batch in shredder.pipeline_batches(
                data, batch_chunks=batch_chunks
            ):
                if not put(batch):
                    return
        except BaseException as exc:  # noqa: BLE001 — forwarded to consumer
            put(exc)
            return
        put(_END)

    feeder = threading.Thread(target=run, name="repro-feed", daemon=True)
    feeder.start()
    try:
        while True:
            item = await queue.get()
            if item is _END:
                break
            if isinstance(item, BaseException):
                raise item
            yield item
    finally:
        # No awaits here: this also runs under GeneratorExit when the
        # consumer abandons the stream, where suspending is illegal.
        # stop + drain unblocks a feeder stuck on the full queue; its
        # put() polls every 0.1 s and sees the flag.
        stop.set()
        while feeder.is_alive():
            try:
                queue.get_nowait()
            except asyncio.QueueEmpty:
                pass
            feeder.join(timeout=0.05)


# ----------------------------------------------------------------------
# synchronous drop-in agent
# ----------------------------------------------------------------------


class _RemoteStoreProxy:
    """The slice of the ChunkStore surface remote callers may touch."""

    def __init__(self, agent: "RemoteAgent") -> None:
        self._agent = agent

    def has_chunk(self, digest: bytes) -> bool:
        return self.has_chunks([digest])[0]

    def has_chunks(self, digests) -> list[bool]:
        return self._agent._call(self._agent._client.has_chunks(list(digests)))

    def snapshot_ids(self) -> list[str]:
        """This tenant's snapshots (the service scopes the listing)."""
        return self._agent.list_snapshots()

    def restore(self, snapshot_id: str) -> bytes:
        return self._agent.restore(snapshot_id)


class RemoteAgent:
    """Synchronous ShredderAgent-shaped facade over the wire client.

    Runs a private event loop on a background thread so callers keep the
    blocking call style of :class:`~repro.backup.agent.ShredderAgent`:
    ``begin_snapshot`` / ``receive_chunk`` / ``receive_pointer`` /
    ``finish_snapshot`` / ``restore``.  Chunk and pointer receives are
    buffered and flushed as batched wire frames (run-grouped, order
    preserved) once ``flush_items`` accumulate or at ``finish_snapshot``
    — per-call latency is traded for the batched wire shape.

    One difference from the in-process agent: the service allows a
    single open snapshot per connection, so interleaving two open
    snapshots through one RemoteAgent raises at the server.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        client_name: str = "",
        flush_items: int = 256,
    ) -> None:
        if flush_items < 1:
            raise ValueError("flush_items must be >= 1")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-remote-agent", daemon=True
        )
        self._thread.start()
        self._flush_items = flush_items
        #: Pending ops for the open snapshot: ("chunk", digest, data) or
        #: ("pointer", digest), in arrival order.
        self._buffer: list[tuple] = []
        self._open: str | None = None
        try:
            self._client = self._call(
                AsyncBackupClient.connect(
                    host, port, tenant=tenant, client_name=client_name
                )
            )
        except BaseException:
            self._shutdown_loop()
            raise

    # -- plumbing ------------------------------------------------------

    def _call(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def _shutdown_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()

    # -- ShredderAgent surface -----------------------------------------

    @property
    def store(self) -> _RemoteStoreProxy:
        return _RemoteStoreProxy(self)

    @property
    def session_id(self) -> str:
        return self._client.session_id

    @property
    def tenant(self) -> str:
        return self._client.tenant

    def begin_snapshot(self, snapshot_id: str) -> None:
        self._call(self._client.begin_snapshot(snapshot_id))
        self._open = snapshot_id
        self._buffer.clear()

    def _require_open(self, snapshot_id: str) -> None:
        if self._open != snapshot_id:
            raise ValueError(f"snapshot {snapshot_id!r} is not open")

    def receive_chunk(
        self, snapshot_id: str, data: bytes, digest: bytes | None = None
    ) -> None:
        self._require_open(snapshot_id)
        # The wire always carries the digest (it is the integrity check
        # the site verifies); compute it here when the caller didn't.
        self._buffer.append(
            ("chunk", digest if digest is not None else chunk_hash(data), data)
        )
        if len(self._buffer) >= self._flush_items:
            self.flush()

    def receive_pointer(self, snapshot_id: str, digest: bytes) -> None:
        self._require_open(snapshot_id)
        self._buffer.append(("pointer", digest))
        if len(self._buffer) >= self._flush_items:
            self.flush()

    def receive_chunks(self, snapshot_id: str, items) -> None:
        """Batched twin of :meth:`receive_chunk` (``(digest, data)``)."""
        self._require_open(snapshot_id)
        for digest, data in items:
            self._buffer.append(
                (
                    "chunk",
                    digest if digest is not None else chunk_hash(data),
                    data,
                )
            )
        if len(self._buffer) >= self._flush_items:
            self.flush()

    def receive_pointers(self, snapshot_id: str, pointer_digests) -> None:
        """Batched twin of :meth:`receive_pointer`."""
        self._require_open(snapshot_id)
        self._buffer.extend(("pointer", d) for d in pointer_digests)
        if len(self._buffer) >= self._flush_items:
            self.flush()

    def flush(self) -> None:
        """Push buffered receives out as run-grouped batch frames."""
        buffer, self._buffer = self._buffer, []
        i = 0
        while i < len(buffer):
            kind = buffer[i][0]
            j = i
            while j < len(buffer) and buffer[j][0] == kind:
                j += 1
            run = buffer[i:j]
            if kind == "chunk":
                self._call(
                    self._client.ship_chunks([(op[1], op[2]) for op in run])
                )
            else:
                self._call(
                    self._client.ship_pointers([op[1] for op in run])
                )
            i = j

    def finish_snapshot(self, snapshot_id: str) -> TransferLog:
        self._require_open(snapshot_id)
        self.flush()
        log = self._call(self._client.finish_snapshot(snapshot_id))
        self._open = None
        return log

    def restore(self, snapshot_id: str) -> bytes:
        return self._call(self._client.restore(snapshot_id))

    def list_snapshots(self) -> list[str]:
        return self._call(self._client.list_snapshots())

    def backup(self, data: bytes, snapshot_id: str, **kwargs) -> RemoteBackupReport:
        """The pipelined remote backup, callable synchronously."""
        return self._call(self._client.backup(data, snapshot_id, **kwargs))

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._call(self._client.close())
        except Exception:
            pass
        self._shutdown_loop()

    def __enter__(self) -> "RemoteAgent":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
