"""Client side of the backup service: async agent + sync drop-in.

:class:`AsyncBackupClient` speaks the batched wire protocol and runs
the paper's client-side pipeline across the network: a feeder thread
drives :meth:`~repro.core.shredder.Shredder.pipeline_batches` (the
bounded scan ‖ hash pipeline), and the event loop overlaps that local
work with shipping — digests of batch *i+1* go out while the chunk
payloads of batch *i* are still in flight, bounded by the server's
advertised ack window.  Replies are strictly in-order per connection
(the protocol's contract), so the client never tags requests; it just
counts outstanding acks.

Dedup decisions are **source-side**: the client sends one DIGEST_BATCH
(decide mode) per pipeline batch and only ships payloads the server's
tenant index has not seen — duplicate chunks cross the wire as
pointer-sized digests, which is the §7 bandwidth story end to end.

:class:`RemoteAgent` wraps the async client behind the synchronous
:class:`~repro.backup.agent.ShredderAgent` surface (``begin_snapshot`` /
``receive_chunk`` / ``receive_pointer`` / ``finish_snapshot`` /
``restore`` + a ``store``-shaped proxy), so existing in-process callers
can point at a remote service without restructuring.

**Resilience** — pass a :class:`RetryPolicy` and the client survives
the network: every request carries a per-op timeout, a dropped
connection is redialed with bounded exponential backoff, and an open
snapshot resumes where it left off.  ``begin_snapshot`` generates a
client-side resume token; after a reconnect the client sends RESUME and
the server answers with its applied-frame high-water mark, so only
frames the server never applied are replayed — acked chunks never cross
the wire twice.  Without a policy the client behaves exactly like
protocol v1: no token, no parking, errors propagate on first failure.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import random
import secrets
import socket
import struct
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field

from repro.backup.agent import TransferLog
from repro.backup.server import _default_backup_chunker
from repro.core.hashing import chunk_hash
from repro.core.shredder import Shredder, ShredderConfig
from repro.service import protocol as wire
from repro.service.protocol import Err, Msg, RemoteError

__all__ = [
    "AsyncBackupClient",
    "RemoteAgent",
    "RemoteBackupReport",
    "RetryPolicy",
]

#: Digested batches buffered between the feeder thread and the sender.
_FEED_DEPTH = 4

#: How long a finished backup waits for its feeder thread to exit
#: before giving up and leaking it (counted + warned, never silent).
_FEED_JOIN_DEADLINE = 5.0

#: Feeder threads that outlived the join deadline (process lifetime).
_abandoned_feeders = 0

#: Error codes worth a reconnect + resume: transient corruption the
#: wire injected (the batch was rejected atomically, replay fixes it),
#: server overload (RETRY_LATER parks the session server-side), or an
#: eviction that parked our session.  UNAUTHORIZED and QUOTA_EXCEEDED
#: are decisive — retrying cannot change the verdict.
_RETRYABLE_CODES = frozenset(
    {
        Err.DIGEST_MISMATCH,
        Err.UNKNOWN_CHUNK,
        Err.BAD_FRAME,
        Err.INTERNAL,
        Err.EVICTED,
        Err.RETRY_LATER,
    }
)

#: Exceptions that mean "the connection (not the request) failed".
_RECOVERABLE_EXC = (OSError, EOFError, asyncio.TimeoutError)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the client fights to keep a backup alive.

    ``attempts`` bounds the redials per recovery; ``max_recoveries``
    bounds recoveries across a whole operation so a permanently dark
    server still fails in finite time.  Delays grow exponentially from
    ``base_delay_s`` to ``max_delay_s`` with half-jitter.
    """

    attempts: int = 5
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: bool = True
    op_timeout_s: float = 30.0
    max_recoveries: int = 32

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if self.op_timeout_s is not None and self.op_timeout_s <= 0:
            raise ValueError("op_timeout_s must be positive or None")
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")

    def delay(self, attempt: int, rng: random.Random) -> float:
        raw = min(self.max_delay_s, self.base_delay_s * (2**attempt))
        if not self.jitter:
            return raw
        return raw / 2 + rng.uniform(0, raw / 2)


@dataclass
class RemoteBackupReport:
    """Outcome of one remote backup, measured at the client."""

    snapshot_id: str
    total_bytes: int
    n_chunks: int
    duplicate_chunks: int
    #: Chunk payload bytes that actually crossed the wire.
    shipped_bytes: int
    elapsed_s: float
    transfer: TransferLog = field(default_factory=TransferLog)
    #: Resilience: connections redialed, successful RESUMEs, and ship
    #: frames replayed after reconnect (unacked only — acked frames are
    #: never re-shipped).
    reconnects: int = 0
    resumes: int = 0
    replayed_frames: int = 0
    #: THROTTLE frames the server sent us during this backup.
    throttles: int = 0

    @property
    def dedup_fraction(self) -> float:
        return self.duplicate_chunks / self.n_chunks if self.n_chunks else 0.0

    @property
    def ingest_mib_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.total_bytes / self.elapsed_s / (1 << 20)


class AsyncBackupClient:
    """One authenticated session against a running BackupService."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        tenant: str,
        session_id: str,
        window: int,
        max_frame: int = wire.DEFAULT_MAX_FRAME,
        retry: RetryPolicy | None = None,
        address: tuple[str, int] | None = None,
        client_name: str = "",
        auth: str = "",
        purpose: int = wire.PURPOSE_BACKUP,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.tenant = tenant
        self.auth = auth
        self.purpose = purpose
        self.session_id = session_id
        #: Max unacked CHUNK/POINTER batches in flight (server's hint).
        self.window = max(1, window)
        self.max_frame = max_frame
        self.retry = retry
        self._address = address
        self._client_name = client_name
        self._closed = False
        self._rng = random.Random()
        # -- resume state (only driven when a RetryPolicy is set) ------
        self._open_snapshot: str | None = None
        self._resume_token = ""
        self._session_open = False  # server-side snapshot confirmed open
        self._finished_remotely = False  # FINISH applied, FINISH_OK lost
        self._next_seq = 1
        self._acked_seq = 0
        #: In-flight ship frames: ``(seq, msg, payload)``, FIFO-acked.
        self._unacked: deque[tuple[int, Msg, bytes]] = deque()
        #: Resilience counters (reset per backup in the report).
        self.reconnects = 0
        self.resumes = 0
        self.replayed_frames = 0
        #: THROTTLE frames absorbed; sends pace until ``_pace_until``.
        self.throttles = 0
        self._pace_until = 0.0

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        client_name: str = "",
        max_frame: int = wire.DEFAULT_MAX_FRAME,
        retry: RetryPolicy | None = None,
        auth: str = "",
        purpose: int = wire.PURPOSE_BACKUP,
    ) -> "AsyncBackupClient":
        """Dial, identify (magic + HELLO), and complete the handshake.

        ``auth`` is the tenant's HMAC token (see
        :func:`repro.service.limits.auth_token`) when the server runs
        with ``--auth-file``; ``purpose`` tags the session for
        priority-aware shedding (restores shed last).
        """
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(wire.MAGIC)
        writer.write(
            wire.encode_frame(
                Msg.HELLO,
                wire.encode_hello(
                    tenant, client_name, auth=auth, purpose=purpose
                ),
            )
        )
        await writer.drain()
        try:
            msg, payload = await wire.read_frame(reader, max_frame)
            if msg is Msg.ERROR:
                raise RemoteError(*wire.decode_error(payload))
            if msg is not Msg.HELLO_OK:
                raise wire.ProtocolError(f"expected HELLO_OK, got {msg.name}")
        except BaseException:
            writer.close()
            raise
        _version, window, session_id = wire.decode_hello_ok(payload)
        return cls(
            reader,
            writer,
            tenant=tenant,
            session_id=session_id,
            window=window,
            max_frame=max_frame,
            retry=retry,
            address=(host, port),
            client_name=client_name,
            auth=auth,
            purpose=purpose,
        )

    # -- low-level request/reply ---------------------------------------

    async def _pace(self) -> None:
        """Honour the last THROTTLE hint before touching the wire."""
        delay = self._pace_until - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)

    def _note_throttle(self, retry_after_s: float) -> None:
        self.throttles += 1
        # Jittered pacing (same half-jitter family as RetryPolicy): the
        # full hint plus up to 25% decorrelates a fleet of throttled
        # clients instead of re-synchronising them on the same instant.
        pace = retry_after_s
        if self.retry is None or self.retry.jitter:
            pace *= 1.0 + self._rng.uniform(0.0, 0.25)
        self._pace_until = max(
            self._pace_until, time.monotonic() + pace
        )

    async def _send(self, msg: Msg, payload: bytes = b"") -> None:
        await self._pace()
        self.writer.write(wire.encode_frame(msg, payload))
        await self.writer.drain()

    async def _recv(self) -> tuple[Msg, bytes]:
        timeout = self.retry.op_timeout_s if self.retry is not None else None
        while True:
            msg, payload = await asyncio.wait_for(
                wire.read_frame(self.reader, self.max_frame), timeout
            )
            if msg is Msg.THROTTLE:
                # Advisory control frame riding ahead of the real FIFO
                # reply: absorb it, arm the pacer, keep waiting.
                retry_after_s, _reason = wire.decode_throttle(payload)
                self._note_throttle(retry_after_s)
                continue
            if msg is Msg.ERROR:
                raise RemoteError(*wire.decode_error(payload))
            return msg, payload

    async def _expect(self, expected: Msg) -> bytes:
        msg, payload = await self._recv()
        if msg is not expected:
            raise wire.ProtocolError(
                f"expected {expected.name}, got {msg.name}"
            )
        return payload

    async def _rpc(self, msg: Msg, payload: bytes, expected: Msg) -> bytes:
        await self._send(msg, payload)
        return await self._expect(expected)

    # -- reconnect + resume --------------------------------------------

    async def _redial(self) -> None:
        """Dial a fresh connection and redo the magic + HELLO handshake."""
        host, port = self._address
        await self._pace()  # a throttled client backs off before redialing
        try:
            # Abort, don't close: a graceful FIN on the old socket looks
            # like a deliberate walk-away to the server (clean EOF =>
            # snapshot aborted); an RST parks the snapshot for resume.
            # abort() only guarantees an RST when unread data is pending
            # in the receive buffer, so force it with SO_LINGER 0.
            sock = self.writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            self.writer.transport.abort()
        except Exception:
            pass
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(wire.MAGIC)
        writer.write(
            wire.encode_frame(
                Msg.HELLO,
                wire.encode_hello(
                    self.tenant,
                    self._client_name,
                    auth=self.auth,
                    purpose=self.purpose,
                ),
            )
        )
        await writer.drain()
        try:
            msg, payload = await asyncio.wait_for(
                wire.read_frame(reader, self.max_frame),
                self.retry.op_timeout_s,
            )
            if msg is Msg.ERROR:
                raise RemoteError(*wire.decode_error(payload))
            if msg is not Msg.HELLO_OK:
                raise wire.ProtocolError(f"expected HELLO_OK, got {msg.name}")
        except BaseException:
            writer.close()
            raise
        _version, window, session_id = wire.decode_hello_ok(payload)
        self.reader, self.writer = reader, writer
        self.window = max(1, window)
        self.session_id = session_id
        self.reconnects += 1

    async def _recover(self) -> None:
        """Redial, re-open the snapshot (RESUME or BEGIN), replay unacked.

        After this returns the server is at our applied-frame high-water
        mark and every unacked ship frame has been resent in order; the
        interrupted operation can simply be retried.
        """
        policy = self.retry
        last: BaseException | None = None
        for attempt in range(policy.attempts):
            if attempt:
                await asyncio.sleep(policy.delay(attempt - 1, self._rng))
            try:
                await self._redial()
                break
            except _RECOVERABLE_EXC as exc:
                last = exc
        else:
            raise last
        if self._open_snapshot is None:
            return
        self._session_open = False
        applied: int | None = None
        unknown: RemoteError | None = None
        for attempt in range(policy.attempts):
            if attempt:
                await asyncio.sleep(policy.delay(attempt - 1, self._rng))
            try:
                payload = await self._rpc(
                    Msg.RESUME,
                    wire.encode_resume(
                        self._open_snapshot, self._resume_token
                    ),
                    Msg.RESUME_OK,
                )
            except RemoteError as exc:
                if exc.code is not Err.RESUME_UNKNOWN:
                    raise
                # The RESUME itself may have been corrupted in flight —
                # a garbled token looks unknown to the server — so ask
                # again before trusting the verdict.
                unknown = exc
                continue
            applied, _chunks, _pointers, _received = wire.decode_resume_ok(
                payload
            )
            self.resumes += 1
            break
        if applied is None:
            # Consistently nothing parked under our token.  Either the
            # snapshot was actually finished (FINISH applied, FINISH_OK
            # lost) or it never progressed server-side (BEGIN lost /
            # grace expired with nothing acked) — anything else is
            # unrecoverable.
            if self._open_snapshot in await self.list_snapshots():
                self._finished_remotely = True
                return
            if self._acked_seq > 0:
                raise unknown
            await self._rpc(
                Msg.BEGIN_SNAPSHOT,
                wire.encode_begin(self._open_snapshot, self._resume_token),
                Msg.BEGIN_OK,
            )
            applied = 0
        self._session_open = True
        # Frames the server applied before the cut count as acked even
        # though their BATCH_OKs were lost with the old connection.
        while self._unacked and self._unacked[0][0] <= applied:
            self._unacked.popleft()
        self._acked_seq = max(self._acked_seq, applied)
        for _seq, msg, payload in self._unacked:
            await self._send(msg, payload)
            self.replayed_frames += 1

    async def _with_recovery(self, op):
        """Run ``op``; on connection failure, recover and retry it.

        A recovery that itself dies on the wire just counts as another
        recovery — only ``max_recoveries`` or a decisive server error
        (non-retryable code) ends the fight.
        """
        policy = self.retry
        recoveries = 0
        need_recover = False
        last: BaseException | None = None
        while True:
            if need_recover:
                recoveries += 1
                if recoveries > policy.max_recoveries:
                    raise last
                try:
                    await self._recover()
                except _RECOVERABLE_EXC as exc:
                    last = exc
                    continue
                except RemoteError as exc:
                    # e.g. the server answered the recovery handshake
                    # with INTERNAL because our frame was garbled in
                    # flight; the session parked, so recover again.
                    if exc.code not in _RETRYABLE_CODES:
                        raise
                    last = exc
                    continue
                need_recover = False
            try:
                return await op()
            except _RECOVERABLE_EXC as exc:
                last = exc
            except RemoteError as exc:
                if policy is None or exc.code not in _RETRYABLE_CODES:
                    raise
                last = exc
            if policy is None or self._address is None:
                raise last
            need_recover = True

    # -- session verbs -------------------------------------------------

    async def begin_snapshot(self, snapshot_id: str) -> None:
        if self.retry is None:
            await self._rpc(
                Msg.BEGIN_SNAPSHOT,
                wire.encode_begin(snapshot_id),
                Msg.BEGIN_OK,
            )
            return
        self._open_snapshot = snapshot_id
        self._resume_token = secrets.token_hex(8)
        self._session_open = False
        self._finished_remotely = False
        self._next_seq = 1
        self._acked_seq = 0
        self._unacked.clear()

        async def op():
            if self._session_open:  # _recover already re-opened it
                return
            await self._rpc(
                Msg.BEGIN_SNAPSHOT,
                wire.encode_begin(snapshot_id, self._resume_token),
                Msg.BEGIN_OK,
            )
            self._session_open = True

        try:
            await self._with_recovery(op)
        except BaseException:
            self._open_snapshot = None
            self._resume_token = ""
            raise

    async def finish_snapshot(self, snapshot_id: str) -> TransferLog:
        if self.retry is None:
            payload = await self._rpc(
                Msg.FINISH, wire.encode_snapshot_id(snapshot_id), Msg.FINISH_OK
            )
            chunks, pointers, received = wire.decode_finish_ok(payload)
            return TransferLog(
                chunks_received=chunks,
                pointers_received=pointers,
                bytes_received=received,
            )

        async def op():
            if self._finished_remotely:  # FINISH applied, ack lost
                return None
            return await self._rpc(
                Msg.FINISH, wire.encode_snapshot_id(snapshot_id), Msg.FINISH_OK
            )

        payload = await self._with_recovery(op)
        self._open_snapshot = None
        self._resume_token = ""
        self._session_open = False
        if payload is None:
            # The recipe is stored but the counts died with the old
            # connection; an empty log keeps the success visible.
            return TransferLog()
        chunks, pointers, received = wire.decode_finish_ok(payload)
        return TransferLog(
            chunks_received=chunks,
            pointers_received=pointers,
            bytes_received=received,
        )

    async def decide_chunks(self, digests, lengths) -> list[bool]:
        """Tenant dedup decision (and index insert) for an open snapshot."""
        payload = await self._rpc(
            Msg.DIGEST_BATCH,
            wire.encode_digest_batch(list(digests), list(lengths)),
            Msg.DIGEST_REPLY,
        )
        return wire.decode_digest_reply(payload)

    async def has_chunks(self, digests) -> list[bool]:
        """Read-only membership probe against the shared payload store."""
        payload = await self._rpc(
            Msg.DIGEST_BATCH,
            wire.encode_digest_batch(list(digests)),
            Msg.DIGEST_REPLY,
        )
        return wire.decode_digest_reply(payload)

    async def ship_chunks(self, items) -> tuple[int, int]:
        """Ship ``(digest, payload)`` pairs; returns (items, bytes) acked."""
        payload = await self._rpc(
            Msg.CHUNK_BATCH, wire.encode_chunk_batch(list(items)), Msg.BATCH_OK
        )
        return wire.decode_batch_ok(payload)

    async def ship_pointers(self, digests) -> int:
        payload = await self._rpc(
            Msg.POINTER_BATCH,
            wire.encode_pointer_batch(list(digests)),
            Msg.BATCH_OK,
        )
        return wire.decode_batch_ok(payload)[0]

    async def list_snapshots(self) -> list[str]:
        payload = await self._rpc(
            Msg.LIST_SNAPSHOTS, b"", Msg.SNAPSHOT_LIST
        )
        return wire.decode_snapshot_list(payload)

    async def restore(self, snapshot_id: str) -> bytes:
        await self._send(Msg.RESTORE, wire.encode_snapshot_id(snapshot_id))
        payload = await self._expect(Msg.RESTORE_BEGIN)
        total_bytes, _n_chunks = wire.decode_restore_begin(payload)
        pieces: list[bytes] = []
        received = 0
        while True:
            msg, payload = await self._recv()
            if msg is Msg.RESTORE_END:
                break
            if msg is not Msg.RESTORE_DATA:
                raise wire.ProtocolError(
                    f"expected RESTORE_DATA, got {msg.name}"
                )
            pieces.append(payload)
            received += len(payload)
        if received != total_bytes:
            raise wire.ProtocolError(
                f"restore announced {total_bytes} bytes, streamed {received}"
            )
        return b"".join(pieces)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncBackupClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- the pipelined backup ------------------------------------------

    async def backup(
        self,
        data: bytes,
        snapshot_id: str,
        *,
        shredder: Shredder | None = None,
        batch_chunks: int | None = None,
    ) -> RemoteBackupReport:
        """Chunk, hash, deduplicate, and ship one snapshot.

        Local chunk+hash runs on the Shredder's own threads (a feeder
        thread pulls :meth:`~repro.core.shredder.Shredder
        .pipeline_batches`); this coroutine overlaps it with the wire:
        per batch one DIGEST_BATCH decides source-side, payload misses
        ship as CHUNK_BATCH and hits as POINTER_BATCH, with up to
        ``window`` unacked batches in flight while the next scan tile is
        still being hashed.
        """
        own_shredder = shredder is None
        if own_shredder:
            shredder = Shredder(
                ShredderConfig.gpu_streams_memory(
                    chunker=_default_backup_chunker()
                )
            )
        t0 = time.perf_counter()
        n_chunks = duplicates = shipped = 0
        reconnects0 = self.reconnects
        resumes0 = self.resumes
        replayed0 = self.replayed_frames
        throttles0 = self.throttles

        async def drain_one() -> None:
            if not self._unacked:
                return  # a resume already accounted every in-flight frame
            ack = await self._expect(Msg.BATCH_OK)
            wire.decode_batch_ok(ack)
            self._unacked.popleft()
            self._acked_seq += 1

        async def ship(msg: Msg, payload: bytes) -> None:
            """Enqueue + send one ship frame exactly once.

            The frame joins ``_unacked`` *before* the send: if the send
            (or anything later) dies, ``_recover`` replays it from the
            queue, so the retried op must not send it a second time.
            """
            self._unacked.append((self._next_seq, msg, payload))
            self._next_seq += 1
            sent = False

            async def op():
                nonlocal sent
                if sent:
                    return
                sent = True
                await self._send(msg, payload)

            await self._with_recovery(op)

        await self.begin_snapshot(snapshot_id)
        try:
            async for batch in _feed(shredder, data, batch_chunks):
                n_chunks += len(batch)
                # Decision round trip: all prior batch acks drain first
                # (replies are FIFO), so at most `window` ship frames
                # ride ahead of this request.
                while self._unacked:
                    await self._with_recovery(drain_one)
                digests = [c.digest for c in batch]
                lengths = [c.length for c in batch]
                # Replaying a decide after reconnect is safe: the server
                # forces re-ship for index entries whose payload never
                # landed, so a lost DIGEST_REPLY cannot lose chunks.
                flags = await self._with_recovery(
                    lambda: self.decide_chunks(digests, lengths)
                )
                # Ship consecutive same-decision runs — order of arrival
                # at the agent is recipe order, identical to in-process.
                i = 0
                while i < len(batch):
                    is_dup = flags[i]
                    j = i
                    while j < len(batch) and flags[j] == is_dup:
                        j += 1
                    run = batch[i:j]
                    if is_dup:
                        duplicates += len(run)
                        await ship(
                            Msg.POINTER_BATCH,
                            wire.encode_pointer_batch(
                                [c.digest for c in run]
                            ),
                        )
                    else:
                        run_bytes = sum(c.length for c in run)
                        shipped += run_bytes
                        await ship(
                            Msg.CHUNK_BATCH,
                            wire.encode_chunk_batch(
                                [(c.digest, c.data) for c in run]
                            ),
                        )
                    while len(self._unacked) >= self.window:
                        await self._with_recovery(drain_one)
                    i = j
            while self._unacked:
                await self._with_recovery(drain_one)
            transfer = await self.finish_snapshot(snapshot_id)
        finally:
            if own_shredder:
                shredder.close()
        return RemoteBackupReport(
            snapshot_id=snapshot_id,
            total_bytes=len(data),
            n_chunks=n_chunks,
            duplicate_chunks=duplicates,
            shipped_bytes=shipped,
            elapsed_s=time.perf_counter() - t0,
            transfer=transfer,
            reconnects=self.reconnects - reconnects0,
            resumes=self.resumes - resumes0,
            replayed_frames=self.replayed_frames - replayed0,
            throttles=self.throttles - throttles0,
        )


async def _feed(shredder: Shredder, data: bytes, batch_chunks: int | None):
    """Async-iterate digested pipeline batches produced on a thread.

    The feeder thread blocks in the Shredder's bounded pipeline; a small
    bounded queue carries batches onto the event loop, so chunk+hash for
    batch *i+1* overlaps the shipping of batch *i* without unbounded
    buffering.  The stop event keeps the thread from wedging on a full
    queue if the consumer dies mid-stream.
    """
    loop = asyncio.get_running_loop()
    queue: asyncio.Queue = asyncio.Queue(maxsize=_FEED_DEPTH)
    stop = threading.Event()
    _END = object()

    def put(item) -> bool:
        # Schedule the enqueue exactly once and poll that same future.
        # A timed-out run_coroutine_threadsafe future is NOT cancelled —
        # the put coroutine stays pending and lands the item when a slot
        # frees, so rescheduling on timeout would enqueue it twice.
        coro = queue.put(item)
        try:
            future = asyncio.run_coroutine_threadsafe(coro, loop)
        except RuntimeError:
            coro.close()  # never scheduled; silence the unawaited warning
            return False  # loop is closing
        while True:
            try:
                future.result(timeout=0.1)
                return True
            except concurrent.futures.TimeoutError:
                if stop.is_set():
                    future.cancel()
                    return False
            except (concurrent.futures.CancelledError, RuntimeError):
                return False

    def run() -> None:
        try:
            for batch in shredder.pipeline_batches(
                data, batch_chunks=batch_chunks
            ):
                if not put(batch):
                    return
        except BaseException as exc:  # noqa: BLE001 — forwarded to consumer
            put(exc)
            return
        put(_END)

    feeder = threading.Thread(target=run, name="repro-feed", daemon=True)
    feeder.start()
    try:
        while True:
            item = await queue.get()
            if item is _END:
                break
            if isinstance(item, BaseException):
                raise item
            yield item
    finally:
        # No awaits here: this also runs under GeneratorExit when the
        # consumer abandons the stream, where suspending is illegal.
        # stop + drain unblocks a feeder stuck on the full queue; its
        # put() polls every 0.1 s and sees the flag.  The join has a
        # real deadline: a feeder wedged in native code (chunker,
        # hasher) must not hang the event loop forever — after
        # _FEED_JOIN_DEADLINE it is abandoned (daemon thread), counted,
        # and warned about instead of silently spun on.
        stop.set()
        deadline = time.monotonic() + _FEED_JOIN_DEADLINE
        while feeder.is_alive():
            try:
                queue.get_nowait()
            except asyncio.QueueEmpty:
                pass
            feeder.join(timeout=0.05)
            if feeder.is_alive() and time.monotonic() >= deadline:
                global _abandoned_feeders
                _abandoned_feeders += 1
                warnings.warn(
                    f"feeder thread {feeder.name!r} still alive "
                    f"{_FEED_JOIN_DEADLINE:g}s after backup ended; "
                    f"abandoning it ({_abandoned_feeders} abandoned "
                    "this process)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break


# ----------------------------------------------------------------------
# synchronous drop-in agent
# ----------------------------------------------------------------------


class _RemoteStoreProxy:
    """The slice of the ChunkStore surface remote callers may touch."""

    def __init__(self, agent: "RemoteAgent") -> None:
        self._agent = agent

    def has_chunk(self, digest: bytes) -> bool:
        return self.has_chunks([digest])[0]

    def has_chunks(self, digests) -> list[bool]:
        return self._agent._call(self._agent._client.has_chunks(list(digests)))

    def snapshot_ids(self) -> list[str]:
        """This tenant's snapshots (the service scopes the listing)."""
        return self._agent.list_snapshots()

    def restore(self, snapshot_id: str) -> bytes:
        return self._agent.restore(snapshot_id)


class RemoteAgent:
    """Synchronous ShredderAgent-shaped facade over the wire client.

    Runs a private event loop on a background thread so callers keep the
    blocking call style of :class:`~repro.backup.agent.ShredderAgent`:
    ``begin_snapshot`` / ``receive_chunk`` / ``receive_pointer`` /
    ``finish_snapshot`` / ``restore``.  Chunk and pointer receives are
    buffered and flushed as batched wire frames (run-grouped, order
    preserved) once ``flush_items`` accumulate or at ``finish_snapshot``
    — per-call latency is traded for the batched wire shape.

    One difference from the in-process agent: the service allows a
    single open snapshot per connection, so interleaving two open
    snapshots through one RemoteAgent raises at the server.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        client_name: str = "",
        flush_items: int = 256,
        retry: RetryPolicy | None = None,
        auth: str = "",
        purpose: int = wire.PURPOSE_BACKUP,
    ) -> None:
        if flush_items < 1:
            raise ValueError("flush_items must be >= 1")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-remote-agent", daemon=True
        )
        self._thread.start()
        self._flush_items = flush_items
        #: Pending ops for the open snapshot: ("chunk", digest, data) or
        #: ("pointer", digest), in arrival order.
        self._buffer: list[tuple] = []
        self._open: str | None = None
        try:
            self._client = self._call(
                AsyncBackupClient.connect(
                    host,
                    port,
                    tenant=tenant,
                    client_name=client_name,
                    retry=retry,
                    auth=auth,
                    purpose=purpose,
                )
            )
        except BaseException:
            self._shutdown_loop()
            raise

    # -- plumbing ------------------------------------------------------

    def _call(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def _shutdown_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()

    # -- ShredderAgent surface -----------------------------------------

    @property
    def store(self) -> _RemoteStoreProxy:
        return _RemoteStoreProxy(self)

    @property
    def session_id(self) -> str:
        return self._client.session_id

    @property
    def tenant(self) -> str:
        return self._client.tenant

    def begin_snapshot(self, snapshot_id: str) -> None:
        self._call(self._client.begin_snapshot(snapshot_id))
        self._open = snapshot_id
        self._buffer.clear()

    def _require_open(self, snapshot_id: str) -> None:
        if self._open != snapshot_id:
            raise ValueError(f"snapshot {snapshot_id!r} is not open")

    def receive_chunk(
        self, snapshot_id: str, data: bytes, digest: bytes | None = None
    ) -> None:
        self._require_open(snapshot_id)
        # The wire always carries the digest (it is the integrity check
        # the site verifies); compute it here when the caller didn't.
        self._buffer.append(
            ("chunk", digest if digest is not None else chunk_hash(data), data)
        )
        if len(self._buffer) >= self._flush_items:
            self.flush()

    def receive_pointer(self, snapshot_id: str, digest: bytes) -> None:
        self._require_open(snapshot_id)
        self._buffer.append(("pointer", digest))
        if len(self._buffer) >= self._flush_items:
            self.flush()

    def receive_chunks(self, snapshot_id: str, items) -> None:
        """Batched twin of :meth:`receive_chunk` (``(digest, data)``)."""
        self._require_open(snapshot_id)
        for digest, data in items:
            self._buffer.append(
                (
                    "chunk",
                    digest if digest is not None else chunk_hash(data),
                    data,
                )
            )
        if len(self._buffer) >= self._flush_items:
            self.flush()

    def receive_pointers(self, snapshot_id: str, pointer_digests) -> None:
        """Batched twin of :meth:`receive_pointer`."""
        self._require_open(snapshot_id)
        self._buffer.extend(("pointer", d) for d in pointer_digests)
        if len(self._buffer) >= self._flush_items:
            self.flush()

    def flush(self) -> None:
        """Push buffered receives out as run-grouped batch frames."""
        buffer, self._buffer = self._buffer, []
        i = 0
        while i < len(buffer):
            kind = buffer[i][0]
            j = i
            while j < len(buffer) and buffer[j][0] == kind:
                j += 1
            run = buffer[i:j]
            if kind == "chunk":
                self._call(
                    self._client.ship_chunks([(op[1], op[2]) for op in run])
                )
            else:
                self._call(
                    self._client.ship_pointers([op[1] for op in run])
                )
            i = j

    def finish_snapshot(self, snapshot_id: str) -> TransferLog:
        self._require_open(snapshot_id)
        self.flush()
        log = self._call(self._client.finish_snapshot(snapshot_id))
        self._open = None
        return log

    def restore(self, snapshot_id: str) -> bytes:
        return self._call(self._client.restore(snapshot_id))

    def list_snapshots(self) -> list[str]:
        return self._call(self._client.list_snapshots())

    def backup(self, data: bytes, snapshot_id: str, **kwargs) -> RemoteBackupReport:
        """The pipelined remote backup, callable synchronously."""
        return self._call(self._client.backup(data, snapshot_id, **kwargs))

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._call(self._client.close())
        except Exception:
            pass
        self._shutdown_loop()

    def __enter__(self) -> "RemoteAgent":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
