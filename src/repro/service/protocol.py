"""Wire protocol for the backup service: framing + message codec.

Every connection starts with a 5-byte magic (``SHRD1``) so the server
can tell agent traffic from a stray HTTP probe, then carries a stream
of length-prefixed frames::

    +------+----------------+-------------------+
    | type |  payload size  |      payload      |
    | u8   |  u32 (big-end) |  size bytes       |
    +------+----------------+-------------------+

The message set is batched-first, mirroring the in-process
``lookup_batch`` shape: digests travel in DIGEST_BATCH frames (query or
decide mode), payloads in CHUNK_BATCH frames carrying ``digest +
payload`` pairs the site verifies before storing, and pointers in
POINTER_BATCH frames.  The request/reply discipline is strictly
in-order per connection, which is what lets the client pipeline
requests and resolve replies FIFO (see :mod:`repro.service.client`).

The codec is pure functions over ``bytes`` — no sockets — so it is
unit-testable and reusable by any transport.
"""

from __future__ import annotations

import struct
from enum import IntEnum
from typing import Sequence

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME",
    "Msg",
    "Err",
    "ProtocolError",
    "RemoteError",
    "encode_frame",
    "read_frame",
    "MODE_QUERY",
    "MODE_DECIDE",
]

MAGIC = b"SHRD1"
#: v2 added the resume handshake: BEGIN_SNAPSHOT carries a
#: client-generated resume token, and RESUME / RESUME_OK let a
#: reconnecting client continue a parked mid-backup session.
#: v3 adds overload protection: HELLO carries an HMAC auth token and a
#: traffic purpose (backup vs restore, for priority-aware shedding),
#: the server may interleave THROTTLE control frames carrying
#: retry-after pacing hints, and UNAUTHORIZED / QUOTA_EXCEEDED /
#: RETRY_LATER are typed errors.
PROTOCOL_VERSION = 3

#: Hard per-frame ceiling: a CHUNK_BATCH of autotune-sized scan batches
#: stays far below this; anything larger is a corrupt or hostile frame.
DEFAULT_MAX_FRAME = 64 << 20

_HEADER = struct.Struct("!BI")  # type, payload length
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")


class Msg(IntEnum):
    """Frame types."""

    HELLO = 1
    HELLO_OK = 2
    BEGIN_SNAPSHOT = 3
    BEGIN_OK = 4
    DIGEST_BATCH = 5
    DIGEST_REPLY = 6
    CHUNK_BATCH = 7
    POINTER_BATCH = 8
    BATCH_OK = 9
    FINISH = 10
    FINISH_OK = 11
    RESTORE = 12
    RESTORE_BEGIN = 13
    RESTORE_DATA = 14
    RESTORE_END = 15
    LIST_SNAPSHOTS = 16
    SNAPSHOT_LIST = 17
    ERROR = 18
    RESUME = 19
    RESUME_OK = 20
    #: Server -> client control frame, allowed *between* replies: the
    #: sender is over a rate limit and the peer should pace itself by
    #: the carried retry-after hint.  Not a reply — clients absorb it
    #: transparently while waiting for the real (FIFO) reply.
    THROTTLE = 21


class Err(IntEnum):
    """ERROR frame codes."""

    VERSION_MISMATCH = 1
    BUSY = 2
    BAD_FRAME = 3
    BAD_TENANT = 4
    UNKNOWN_SNAPSHOT = 5
    SNAPSHOT_EXISTS = 6
    DIGEST_MISMATCH = 7
    UNKNOWN_CHUNK = 8
    INTERNAL = 9
    #: RESUME named a token the server has no parked session for (it
    #: expired, was already resumed, or never parked) — the client must
    #: fall back to a fresh BEGIN_SNAPSHOT.
    RESUME_UNKNOWN = 10
    #: The server evicted this connection for stalling past the
    #: configured timeout; any open snapshot was parked for resume.
    EVICTED = 11
    #: HELLO failed authentication (bad or missing token, or the
    #: tenant is unknown to the auth registry — deliberately the same
    #: answer, so the handshake cannot probe for tenant existence).
    UNAUTHORIZED = 12
    #: A hard per-tenant ceiling (stored bytes, chunk count, or
    #: concurrent sessions) would be exceeded; not retryable.
    QUOTA_EXCEEDED = 13
    #: The server is shedding load (sustained over-rate, open circuit
    #: breaker, or brownout); retry after backing off — any open
    #: snapshot was parked for resume, nothing was applied.
    RETRY_LATER = 14


#: HELLO traffic purposes, used for priority-aware load shedding at
#: admission: restore traffic (a tenant trying to get data *back*)
#: sheds last, so a reserve of session slots can be held for it.
PURPOSE_BACKUP = 0
PURPOSE_RESTORE = 1

#: DIGEST_BATCH modes: QUERY is a read-only membership probe against
#: the shared payload store (the remote twin of ``has_chunk``); DECIDE
#: runs the tenant's dedup decision for the open snapshot and *inserts*
#: into the tenant index, exactly like ``lookup_or_insert_batch``.
MODE_QUERY = 0
MODE_DECIDE = 1


class ProtocolError(ValueError):
    """Malformed or oversized wire data (local decode failure)."""


class RemoteError(RuntimeError):
    """An ERROR frame from the peer, surfaced to the caller."""

    def __init__(self, code: Err, message: str) -> None:
        super().__init__(f"[{code.name}] {message}")
        self.code = code
        self.remote_message = message


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------


def encode_frame(msg: Msg, payload: bytes = b"") -> bytes:
    """One wire frame: header + payload."""
    return _HEADER.pack(int(msg), len(payload)) + payload


async def read_frame(reader, max_frame: int = DEFAULT_MAX_FRAME) -> tuple[Msg, bytes]:
    """Read exactly one frame from an asyncio stream reader.

    Raises :class:`ProtocolError` on an unknown type or an oversized
    length, and lets ``asyncio.IncompleteReadError`` surface on EOF so
    callers can distinguish a clean close from garbage.
    """
    header = await reader.readexactly(_HEADER.size)
    type_byte, size = _HEADER.unpack(header)
    try:
        msg = Msg(type_byte)
    except ValueError:
        raise ProtocolError(f"unknown frame type {type_byte}") from None
    if size > max_frame:
        raise ProtocolError(
            f"frame of {size} bytes exceeds the {max_frame}-byte limit"
        )
    payload = await reader.readexactly(size) if size else b""
    return msg, payload


# ----------------------------------------------------------------------
# primitive packers
# ----------------------------------------------------------------------


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError("string field exceeds 64 KiB")
    return _U16.pack(len(raw)) + raw


def _take(payload: bytes, offset: int, size: int) -> tuple[bytes, int]:
    end = offset + size
    if end > len(payload):
        raise ProtocolError("truncated frame payload")
    return payload[offset:end], end


def _take_str(payload: bytes, offset: int) -> tuple[str, int]:
    raw, offset = _take(payload, offset, _U16.size)
    (size,) = _U16.unpack(raw)
    raw, offset = _take(payload, offset, size)
    try:
        return raw.decode("utf-8"), offset
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"undecodable string field: {exc}") from None


def _done(payload: bytes, offset: int) -> None:
    if offset != len(payload):
        raise ProtocolError(
            f"{len(payload) - offset} trailing bytes in frame payload"
        )


# ----------------------------------------------------------------------
# handshake
# ----------------------------------------------------------------------


def encode_hello(
    tenant: str,
    client_name: str = "",
    version: int = PROTOCOL_VERSION,
    auth: str = "",
    purpose: int = PURPOSE_BACKUP,
) -> bytes:
    """v3 appends an auth token (HMAC hexdigest, empty = anonymous) and
    a traffic purpose byte; v2 frames simply stop after the name."""
    return (
        _U16.pack(version)
        + _pack_str(tenant)
        + _pack_str(client_name)
        + _pack_str(auth)
        + bytes([purpose])
    )


def decode_hello(payload: bytes) -> tuple[int, str, str, str, int]:
    raw, offset = _take(payload, 0, _U16.size)
    (version,) = _U16.unpack(raw)
    tenant, offset = _take_str(payload, offset)
    client_name, offset = _take_str(payload, offset)
    if offset == len(payload):
        return version, tenant, client_name, "", PURPOSE_BACKUP  # v2 frame
    auth, offset = _take_str(payload, offset)
    raw, offset = _take(payload, offset, 1)
    purpose = raw[0]
    if purpose not in (PURPOSE_BACKUP, PURPOSE_RESTORE):
        raise ProtocolError(f"unknown traffic purpose {purpose}")
    _done(payload, offset)
    return version, tenant, client_name, auth, purpose


def encode_hello_ok(session_id: str, window: int, version: int = PROTOCOL_VERSION) -> bytes:
    return _U16.pack(version) + _U16.pack(window) + _pack_str(session_id)


def decode_hello_ok(payload: bytes) -> tuple[int, int, str]:
    raw, offset = _take(payload, 0, _U16.size)
    (version,) = _U16.unpack(raw)
    raw, offset = _take(payload, offset, _U16.size)
    (window,) = _U16.unpack(raw)
    session_id, offset = _take_str(payload, offset)
    _done(payload, offset)
    return version, window, session_id


# ----------------------------------------------------------------------
# snapshot control
# ----------------------------------------------------------------------


def encode_snapshot_id(snapshot_id: str) -> bytes:
    """Shared by FINISH / RESTORE."""
    return _pack_str(snapshot_id)


def decode_snapshot_id(payload: bytes) -> str:
    snapshot_id, offset = _take_str(payload, 0)
    _done(payload, offset)
    return snapshot_id


def encode_begin(snapshot_id: str, token: str = "") -> bytes:
    """BEGIN_SNAPSHOT: id + client-generated resume token.

    The token is client-generated (not handed out in BEGIN_OK) so a
    client whose BEGIN applied but whose reply was lost can still
    RESUME — it never depends on having *seen* a server reply.  An
    empty token opts out of parking (the session aborts on disconnect,
    the v1 behaviour).
    """
    return _pack_str(snapshot_id) + _pack_str(token)


def decode_begin(payload: bytes) -> tuple[str, str]:
    snapshot_id, offset = _take_str(payload, 0)
    if offset == len(payload):
        return snapshot_id, ""  # v1 frame: no token field
    token, offset = _take_str(payload, offset)
    _done(payload, offset)
    return snapshot_id, token


def encode_resume(snapshot_id: str, token: str) -> bytes:
    """RESUME: reclaim a parked session for this snapshot + token."""
    return _pack_str(snapshot_id) + _pack_str(token)


def decode_resume(payload: bytes) -> tuple[str, str]:
    snapshot_id, offset = _take_str(payload, 0)
    token, offset = _take_str(payload, offset)
    _done(payload, offset)
    return snapshot_id, token


def encode_resume_ok(
    applied_frames: int, chunks: int, pointers: int, received_bytes: int
) -> bytes:
    """RESUME_OK: how far the server got.

    ``applied_frames`` is the count of ship frames (CHUNK_BATCH /
    POINTER_BATCH) fully applied for the parked snapshot — the client
    replays only frames numbered beyond it, which is what makes resume
    exactly-once: acked work is never re-shipped, unacked work is.
    """
    return (
        _U32.pack(applied_frames)
        + _U32.pack(chunks)
        + _U32.pack(pointers)
        + _U64.pack(received_bytes)
    )


def decode_resume_ok(payload: bytes) -> tuple[int, int, int, int]:
    raw, offset = _take(payload, 0, _U32.size)
    (applied_frames,) = _U32.unpack(raw)
    raw, offset = _take(payload, offset, _U32.size)
    (chunks,) = _U32.unpack(raw)
    raw, offset = _take(payload, offset, _U32.size)
    (pointers,) = _U32.unpack(raw)
    raw, offset = _take(payload, offset, _U64.size)
    (received_bytes,) = _U64.unpack(raw)
    _done(payload, offset)
    return applied_frames, chunks, pointers, received_bytes


def encode_finish_ok(chunks: int, pointers: int, received_bytes: int) -> bytes:
    return _U32.pack(chunks) + _U32.pack(pointers) + _U64.pack(received_bytes)


def decode_finish_ok(payload: bytes) -> tuple[int, int, int]:
    raw, offset = _take(payload, 0, _U32.size)
    (chunks,) = _U32.unpack(raw)
    raw, offset = _take(payload, offset, _U32.size)
    (pointers,) = _U32.unpack(raw)
    raw, offset = _take(payload, offset, _U64.size)
    (received_bytes,) = _U64.unpack(raw)
    _done(payload, offset)
    return chunks, pointers, received_bytes


# ----------------------------------------------------------------------
# digest batches
# ----------------------------------------------------------------------


def _check_digests(digests: Sequence[bytes]) -> int:
    if not digests:
        raise ProtocolError("empty digest batch")
    size = len(digests[0])
    if not 1 <= size <= 0xFF:
        raise ProtocolError(f"digest size {size} out of range")
    for d in digests:
        if len(d) != size:
            raise ProtocolError("mixed digest sizes in one batch")
    return size


def encode_digest_batch(
    digests: Sequence[bytes], lengths: Sequence[int] | None = None
) -> bytes:
    """QUERY mode without ``lengths``; DECIDE mode with per-digest chunk
    lengths (the tenant index accounts dedup'd bytes from them)."""
    size = _check_digests(digests)
    mode = MODE_QUERY if lengths is None else MODE_DECIDE
    parts = [bytes([mode, size]), _U32.pack(len(digests))]
    if lengths is None:
        parts.extend(digests)
    else:
        if len(lengths) != len(digests):
            raise ProtocolError("lengths/digests count mismatch")
        for digest, length in zip(digests, lengths):
            parts.append(digest)
            parts.append(_U32.pack(length))
    return b"".join(parts)


def decode_digest_batch(payload: bytes) -> tuple[int, list[bytes], list[int] | None]:
    raw, offset = _take(payload, 0, 2)
    mode, size = raw[0], raw[1]
    if mode not in (MODE_QUERY, MODE_DECIDE):
        raise ProtocolError(f"unknown digest-batch mode {mode}")
    if size < 1:
        raise ProtocolError("zero digest size")
    raw, offset = _take(payload, offset, _U32.size)
    (count,) = _U32.unpack(raw)
    digests: list[bytes] = []
    lengths: list[int] | None = None if mode == MODE_QUERY else []
    for _ in range(count):
        digest, offset = _take(payload, offset, size)
        digests.append(digest)
        if lengths is not None:
            raw, offset = _take(payload, offset, _U32.size)
            lengths.append(_U32.unpack(raw)[0])
    _done(payload, offset)
    return mode, digests, lengths


def encode_digest_reply(flags: Sequence[bool]) -> bytes:
    return _U32.pack(len(flags)) + bytes(1 if f else 0 for f in flags)


def decode_digest_reply(payload: bytes) -> list[bool]:
    raw, offset = _take(payload, 0, _U32.size)
    (count,) = _U32.unpack(raw)
    raw, offset = _take(payload, offset, count)
    _done(payload, offset)
    return [b != 0 for b in raw]


# ----------------------------------------------------------------------
# chunk / pointer batches
# ----------------------------------------------------------------------


def encode_chunk_batch(items: Sequence[tuple[bytes, bytes]]) -> bytes:
    """``(digest, payload)`` pairs — the digests are the sender's claim,
    verified (batched) by the site agent before anything is stored."""
    size = _check_digests([digest for digest, _ in items])
    parts = [bytes([size]), _U32.pack(len(items))]
    for digest, data in items:
        parts.append(digest)
        parts.append(_U32.pack(len(data)))
        parts.append(bytes(data))
    return b"".join(parts)


def decode_chunk_batch(payload: bytes) -> list[tuple[bytes, bytes]]:
    raw, offset = _take(payload, 0, 1)
    size = raw[0]
    if size < 1:
        raise ProtocolError("zero digest size")
    raw, offset = _take(payload, offset, _U32.size)
    (count,) = _U32.unpack(raw)
    items: list[tuple[bytes, bytes]] = []
    for _ in range(count):
        digest, offset = _take(payload, offset, size)
        raw, offset = _take(payload, offset, _U32.size)
        (length,) = _U32.unpack(raw)
        data, offset = _take(payload, offset, length)
        items.append((digest, data))
    _done(payload, offset)
    return items


def encode_pointer_batch(digests: Sequence[bytes]) -> bytes:
    size = _check_digests(digests)
    return bytes([size]) + _U32.pack(len(digests)) + b"".join(digests)


def decode_pointer_batch(payload: bytes) -> list[bytes]:
    raw, offset = _take(payload, 0, 1)
    size = raw[0]
    if size < 1:
        raise ProtocolError("zero digest size")
    raw, offset = _take(payload, offset, _U32.size)
    (count,) = _U32.unpack(raw)
    digests = []
    for _ in range(count):
        digest, offset = _take(payload, offset, size)
        digests.append(digest)
    _done(payload, offset)
    return digests


def encode_batch_ok(items: int, received_bytes: int) -> bytes:
    return _U32.pack(items) + _U64.pack(received_bytes)


def decode_batch_ok(payload: bytes) -> tuple[int, int]:
    raw, offset = _take(payload, 0, _U32.size)
    (items,) = _U32.unpack(raw)
    raw, offset = _take(payload, offset, _U64.size)
    (received_bytes,) = _U64.unpack(raw)
    _done(payload, offset)
    return items, received_bytes


# ----------------------------------------------------------------------
# restore streaming
# ----------------------------------------------------------------------


def encode_restore_begin(total_bytes: int, n_chunks: int) -> bytes:
    return _U64.pack(total_bytes) + _U32.pack(n_chunks)


def decode_restore_begin(payload: bytes) -> tuple[int, int]:
    raw, offset = _take(payload, 0, _U64.size)
    (total_bytes,) = _U64.unpack(raw)
    raw, offset = _take(payload, offset, _U32.size)
    (n_chunks,) = _U32.unpack(raw)
    _done(payload, offset)
    return total_bytes, n_chunks


# ----------------------------------------------------------------------
# snapshot listing
# ----------------------------------------------------------------------


def encode_snapshot_list(snapshot_ids: Sequence[str]) -> bytes:
    parts = [_U32.pack(len(snapshot_ids))]
    parts.extend(_pack_str(sid) for sid in snapshot_ids)
    return b"".join(parts)


def decode_snapshot_list(payload: bytes) -> list[str]:
    raw, offset = _take(payload, 0, _U32.size)
    (count,) = _U32.unpack(raw)
    ids: list[str] = []
    for _ in range(count):
        sid, offset = _take_str(payload, offset)
        ids.append(sid)
    _done(payload, offset)
    return ids


# ----------------------------------------------------------------------
# throttle control frames
# ----------------------------------------------------------------------


def encode_throttle(retry_after_s: float, reason: str = "") -> bytes:
    """Retry-after hint in milliseconds (u32, so up to ~49 days)."""
    millis = max(0, min(0xFFFFFFFF, int(round(retry_after_s * 1000.0))))
    return _U32.pack(millis) + _pack_str(reason)


def decode_throttle(payload: bytes) -> tuple[float, str]:
    raw, offset = _take(payload, 0, _U32.size)
    (millis,) = _U32.unpack(raw)
    reason, offset = _take_str(payload, offset)
    _done(payload, offset)
    return millis / 1000.0, reason


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------


def encode_error(code: Err, message: str) -> bytes:
    return _U16.pack(int(code)) + _pack_str(message)


def decode_error(payload: bytes) -> tuple[Err, str]:
    raw, offset = _take(payload, 0, _U16.size)
    (code_value,) = _U16.unpack(raw)
    message, offset = _take_str(payload, offset)
    _done(payload, offset)
    try:
        code = Err(code_value)
    except ValueError:
        code = Err.INTERNAL
    return code, message
