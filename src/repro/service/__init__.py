"""Backup-as-a-service front-end (§2/§6 deployment story).

The paper deploys Shredder as a backup *service*: many client agents
stream snapshots to a consolidated backup server over the network.
This package turns the in-process :class:`~repro.backup.server
.BackupServer` machinery into that long-running daemon:

* :mod:`repro.service.protocol` — length-prefixed binary framing and
  the batched agent wire messages (HELLO handshake, DIGEST/CHUNK/
  POINTER batches, FINISH, RESTORE, ERROR);
* :mod:`repro.service.tenant` — per-tenant namespaces: tenant-scoped
  dedup index and recipes over shared chunk payloads;
* :mod:`repro.service.server` — the asyncio server with admission
  control and bounded-queue backpressure;
* :mod:`repro.service.client` — the async client agent that overlaps
  local chunk+hash with in-flight shipping, plus a synchronous
  drop-in for :class:`~repro.backup.agent.ShredderAgent`;
* :mod:`repro.service.metrics` — the aggregated health/metrics
  surface served over plain HTTP on the same port;
* :mod:`repro.service.limits` — overload protection: token-bucket
  rate limits, per-tenant quotas with durable usage accounting,
  shared-secret HMAC auth, and the store-path circuit breaker.
"""

from repro.service.limits import (
    AuthRegistry,
    CircuitBreaker,
    ServiceLimits,
    TenantQuota,
    TokenBucket,
    UsageAccount,
    auth_token,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Err,
    Msg,
    ProtocolError,
    RemoteError,
)
from repro.service.tenant import TenantNamespace, TenantRegistry
from repro.service.server import BackupService, ServiceConfig
from repro.service.client import (
    AsyncBackupClient,
    RemoteAgent,
    RemoteBackupReport,
    RetryPolicy,
)
from repro.service.metrics import ServiceMetrics

__all__ = [
    "PROTOCOL_VERSION",
    "Err",
    "Msg",
    "ProtocolError",
    "RemoteError",
    "TenantNamespace",
    "TenantRegistry",
    "BackupService",
    "ServiceConfig",
    "AsyncBackupClient",
    "RemoteAgent",
    "RemoteBackupReport",
    "RetryPolicy",
    "ServiceMetrics",
    "AuthRegistry",
    "CircuitBreaker",
    "ServiceLimits",
    "TenantQuota",
    "TokenBucket",
    "UsageAccount",
    "auth_token",
]
