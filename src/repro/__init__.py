"""repro: full reproduction of Shredder (FAST 2012).

GPU-accelerated content-based chunking for incremental storage and
computation, with a simulated Tesla C2050 substrate, an Inc-HDFS +
incremental MapReduce case study, and a cloud-backup case study.
"""

__version__ = "1.0.0"
