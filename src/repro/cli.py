"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``chunk FILE``      content-based chunking of a file; prints chunk table
                    (``--profile`` adds the scan/hash/lookup stage split
                    and fused-kernel dispatch counters)
``dedup A B``       cross-file dedup statistics (how similar are A and B?)
``throughput``      the Figure 12 configuration comparison (modeled)
``table1``          the simulated GPU's Table 1 characteristics
``backup FILE``     one-shot dedup backup of FILE against itself + stats;
                    ``--remote HOST:PORT [--tenant NAME]`` ships it over
                    the wire to a running backup service instead
``cluster FILE``    dedup backup through the sharded chunk-store cluster,
                    with optional node-failure + repair drill; ``--backend
                    disk --data-dir DIR`` persists every shard/recipe so a
                    later run reopens them; ``--placement ec --ec 4+2``
                    stores Reed–Solomon fragments instead of replicas
``serve``           run the multi-tenant backup service daemon (agent
                    wire protocol + /health + /metrics on one port)
``scrub DIR``       reopen a persistent cluster and run one integrity
                    pass: re-digest every stored payload/fragment,
                    rebuild mismatches from parity/replicas
``tune``            measure + persist the striped-scan geometry for this
                    host (tile size, lanes, fused roll steps, threads)
``lint [PATHS]``    AST-based project-invariant checks (zero-copy hot
                    path, batched-only probes, async-blocking, lock
                    discipline, protocol exhaustiveness, metrics
                    coverage, dead code); exits 0 clean / 1 findings /
                    2 internal error
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.reporting import ResultTable, format_table

__all__ = ["main"]

GB = 1 << 30


def _read(path: str) -> bytes:
    data = Path(path).read_bytes()
    if not data:
        raise SystemExit(f"{path} is empty")
    return data


def _chunker_config(args) -> "ChunkerConfig":
    from repro.core.chunking import ChunkerConfig

    return ChunkerConfig(
        mask_bits=args.mask_bits,
        marker=args.marker & ((1 << args.mask_bits) - 1),
        min_size=args.min_size,
        max_size=args.max_size,
    )


def _apply_threads(args) -> None:
    """Plumb ``--threads`` to the scan engine and hash pool.

    ``set_threads`` governs both shared worker pools and every engine
    built afterwards (0/1 = serial).  The default (no flag) auto-detects
    from ``REPRO_THREADS`` or the host CPU count.
    """
    threads = getattr(args, "threads", None)
    if threads is not None:
        from repro.core.threads import set_threads

        try:
            set_threads(threads)
        except ValueError as exc:
            raise SystemExit(f"invalid --threads: {exc}")


def _profiled_chunk(chunker, view) -> list:
    """Chunk ``view`` through the stage-overlapped pipeline, metered.

    Slices the buffer into scan-tile-sized pieces and runs the real
    scan ∥ hash pipeline plus a batched dedup probe, so the stage
    timers (scan / hash / lookup) and fused-kernel dispatch counters
    reflect the production data path.  Chunks are identical to the
    whole-buffer path (stream chunking is boundary-exact).
    """
    from repro.core import DedupIndex, get_geometry
    from repro.core import reset_scan_counters, reset_stage_times

    reset_scan_counters()
    reset_stage_times()
    piece = max(get_geometry().tile_bytes, 1 << 20)
    buffers = [view[off : off + piece] for off in range(0, len(view), piece)]
    chunks = list(chunker.chunk_pipelined(buffers))
    DedupIndex().lookup_or_insert_batch(chunks)
    return chunks


def _print_profile(n_bytes: int, seconds: float) -> None:
    """Print the stage split from the one merged stats snapshot.

    Consumes :func:`repro.core.stats.snapshot` — the same document the
    service's ``/metrics`` endpoint serves — so the CLI profile and the
    daemon's metrics surface can never drift apart.
    """
    from repro.core import stats_snapshot

    snap = stats_snapshot()
    mib = n_bytes / (1 << 20)
    table = ResultTable(
        "Pipeline stage split",
        ["Stage", "Seconds", "% of wall", "MiB/s"],
        )
    for name in ("scan", "hash", "lookup", "store"):
        spent = snap["stages"].get(name, 0.0)
        table.add(
            name, f"{spent:.3f}",
            f"{100 * spent / seconds:.0f}%" if seconds else "-",
            f"{mib / spent:.1f}" if spent else "-",
        )
    print(format_table(table))
    c = snap["scan"]
    if c["dispatches"]:
        g = c["geometry"]
        print(
            f"scan kernel: {c['dispatches']} dispatches over {c['tiles']} "
            f"tiles ({c['bytes_per_dispatch'] / 1024:.0f} KiB/dispatch, "
            f"{c['dispatches_per_mib']:.1f} dispatches/MiB)"
        )
        print(
            f"scan geometry: lanes={g.get('lanes')} "
            f"tile={g.get('tile_bytes', 0) >> 20} MiB "
            f"roll_steps={g.get('roll_steps')}"
        )
    backends = snap["backends"]
    if backends.get("instances"):
        print(
            f"store backends: {backends['instances']} live, "
            f"{backends.get('batches', 0)} batched calls, "
            f"{backends.get('puts', 0)} inserts, "
            f"{backends.get('gets', 0)} gets"
        )


def cmd_chunk(args) -> int:
    import mmap
    import time

    from repro.core import Chunker, size_stats

    _apply_threads(args)
    chunker = Chunker(_chunker_config(args))
    profile_seconds = 0.0
    # Zero-copy path: chunk the file through an mmap'd memoryview — the
    # scan, boundary selection, and batched hashing all run against the
    # page cache without ever copying the payload into Python bytes.
    with open(args.file, "rb") as fh:
        try:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):  # empty file or unmappable source
            mapped = None
        if mapped is None:
            data = _read(args.file)
            if args.profile:
                t0 = time.perf_counter()
                chunks = _profiled_chunk(chunker, memoryview(data))
                profile_seconds = time.perf_counter() - t0
            else:
                chunks = chunker.chunk(data)
        else:
            view = memoryview(mapped)
            chunks = []
            try:
                if args.profile:
                    t0 = time.perf_counter()
                    chunks = _profiled_chunk(chunker, view)
                    profile_seconds = time.perf_counter() - t0
                else:
                    chunks = chunker.chunk(view)  # digests computed batched
            finally:
                for c in chunks:
                    c.release()  # digests recorded; let the mmap go
                view.release()
                try:
                    mapped.close()
                except BufferError:
                    # An in-flight exception's traceback frames can still
                    # hold exported views; let that exception surface and
                    # leave the unmap to garbage collection.
                    pass
    stats = size_stats([c.length for c in chunks])
    table = ResultTable(
        f"Chunks of {args.file}",
        ["Offset", "Length", "Digest (prefix)"],
    )
    shown = chunks if args.all else chunks[:20]
    for c in shown:
        table.add(c.offset, c.length, c.digest.hex()[:16])
    print(format_table(table))
    if len(chunks) > len(shown):
        print(f"... {len(chunks) - len(shown)} more chunks (use --all)")
    print(
        f"{stats.count} chunks, mean {stats.mean:.0f} B "
        f"(min {stats.minimum}, max {stats.maximum})"
    )
    if args.profile:
        _print_profile(stats.total, profile_seconds)
    return 0


def cmd_dedup(args) -> int:
    from repro.core import Chunker, DedupIndex

    chunker = Chunker(_chunker_config(args))
    index = DedupIndex()
    index.add_all(chunker.chunk(_read(args.file_a)))
    unique_before = index.stats.unique_bytes
    index.add_all(chunker.chunk(_read(args.file_b)))
    stats = index.stats
    new_bytes = stats.unique_bytes - unique_before
    print(f"{args.file_b} vs {args.file_a}:")
    print(f"  shared content: {stats.duplicate_bytes} B across "
          f"{stats.duplicate_chunks} duplicate chunks")
    print(f"  new content in {args.file_b}: {new_bytes} B")
    print(f"  overall dedup ratio: {stats.dedup_ratio:.1%}")
    return 0


def cmd_throughput(args) -> int:
    from repro.core.shredder import Shredder, ShredderConfig

    table = ResultTable(
        "Modeled chunking throughput, 1 GiB stream (Figure 12)",
        ["Configuration", "GBps"],
    )
    for name, cfg in [
        ("CPU w/o Hoard", ShredderConfig.cpu(hoard=False)),
        ("CPU w/ Hoard", ShredderConfig.cpu(hoard=True)),
        ("GPU Basic", ShredderConfig.gpu_basic()),
        ("GPU Streams", ShredderConfig.gpu_streams()),
        ("GPU Streams + Memory", ShredderConfig.gpu_streams_memory()),
    ]:
        with Shredder(cfg) as shredder:
            table.add(name, shredder.simulate(GB).throughput_bps / 1e9)
    print(format_table(table))
    return 0


def cmd_table1(args) -> int:
    from repro.gpu import table1_rows

    table = ResultTable(
        "Performance characteristics of the GPU (NVidia Tesla C2050)",
        ["Parameter", "Value"],
    )
    for row in table1_rows():
        table.add(*row)
    print(format_table(table))
    return 0


def _free_snapshot_id(store, base: str = "cli") -> str:
    """First unused CLI snapshot id in ``store``.

    A reopened persistent store already holds earlier runs' snapshots;
    re-using their id would (correctly) be rejected by the recipe store,
    so successive CLI runs get ``cli``, ``cli-2``, ``cli-3``, ...
    """
    sid, n = base, 1
    while True:
        try:
            store.get_recipe(sid)
        except KeyError:
            return sid
        n += 1
        sid = f"{base}-{n}"


def _parse_ec(spec: str) -> tuple[int, int]:
    """Parse an ``--ec K+M`` geometry (e.g. ``4+2``)."""
    k_s, sep, m_s = spec.partition("+")
    if not sep:
        raise argparse.ArgumentTypeError(f"--ec wants K+M (e.g. 4+2), got {spec!r}")
    try:
        k, m = int(k_s), int(m_s)
    except ValueError:
        raise argparse.ArgumentTypeError(f"--ec wants integers K+M, got {spec!r}")
    if k < 1 or m < 0:
        raise argparse.ArgumentTypeError(f"--ec wants K >= 1 and M >= 0, got {spec!r}")
    return k, m


def _parse_remote(remote: str) -> tuple[str, int]:
    host, sep, port_s = remote.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"--remote wants HOST:PORT, got {remote!r}")
    try:
        return host, int(port_s)
    except ValueError:
        raise SystemExit(f"--remote port {port_s!r} is not a number")


def _remote_backup(args, data: bytes) -> int:
    from repro.service import RemoteAgent
    from repro.service.protocol import RemoteError

    host, port = _parse_remote(args.remote)
    retry = None
    if args.retry:
        from repro.service import RetryPolicy

        retry = RetryPolicy(attempts=max(1, args.retry))
    try:
        agent = RemoteAgent(
            host, port, tenant=args.tenant, client_name="cli", retry=retry,
            auth=args.auth_token,
        )
    except (OSError, RemoteError) as exc:
        raise SystemExit(f"cannot reach backup service at {args.remote}: {exc}")
    with agent:
        taken = set(agent.list_snapshots())
        sid, n = "cli", 1
        while sid in taken:
            n += 1
            sid = f"cli-{n}"
        try:
            report = agent.backup(data, sid)
        except RemoteError as exc:
            raise SystemExit(f"remote backup failed: {exc}")
        restored = agent.restore(sid)
    assert restored == data
    print(f"remote service {args.remote} (tenant {args.tenant!r}), "
          f"stored as snapshot {sid!r}")
    print(f"backed up {report.total_bytes} B as {report.n_chunks} chunks")
    print(f"  shipped {report.shipped_bytes} B "
          f"({report.dedup_fraction:.1%} duplicate chunks)")
    print(f"  wire ingest: {report.ingest_mib_s:.1f} MiB/s "
          f"({report.elapsed_s:.2f} s wall)")
    if report.reconnects or report.resumes or report.replayed_frames:
        print(f"  survived the wire: {report.reconnects} reconnects, "
              f"{report.resumes} resumes, {report.replayed_frames} "
              "unacked frames replayed (acked chunks never re-shipped)")
    if report.throttles:
        print(f"  paced by the service: {report.throttles} THROTTLE "
              "hints honored")
    print("  restore verified byte-exact")
    return 0


def cmd_backup(args) -> int:
    from repro.backup import BackupConfig, BackupServer

    _apply_threads(args)
    data = _read(args.file)
    if args.remote:
        if args.backend or args.data_dir:
            raise SystemExit(
                "--remote ships to a running service; storage flags "
                "(--backend/--data-dir) belong to `repro serve`"
            )
        return _remote_backup(args, data)
    try:
        config = BackupConfig(
            engine=args.engine, backend=args.backend, data_dir=args.data_dir
        )
    except ValueError as exc:
        raise SystemExit(f"backup config rejected: {exc}")
    with BackupServer(config) as server:
        snapshot_id = _free_snapshot_id(server.agent.store)
        report = server.backup_snapshot(data, snapshot_id)
        restored = server.agent.restore(snapshot_id)
    assert restored == data
    if args.data_dir:
        print(f"persistent store: {args.data_dir} ({server.storage_kind}), "
              f"stored as snapshot {snapshot_id!r}")
    print(f"backed up {report.total_bytes} B as {report.n_chunks} chunks")
    print(f"  shipped {report.shipped_bytes} B "
          f"({report.dedup_fraction:.1%} duplicate chunks)")
    print(f"  modeled bandwidth: {report.backup_bandwidth_gbps:.2f} Gbps "
          f"(bottleneck: {report.bottleneck})")
    print("  restore verified byte-exact")
    return 0


def cmd_cluster(args) -> int:
    from repro.backup import BackupConfig, BackupServer

    _apply_threads(args)
    data = _read(args.file)
    try:
        config = BackupConfig(
            engine=args.engine,
            backend=args.backend,
            data_dir=args.data_dir,
            store_backend="cluster",
            cluster_nodes=args.nodes,
            placement=args.placement,
            replication=args.replication,
            ec_k=args.ec[0],
            ec_m=args.ec[1],
            read_attempts=args.read_attempts,
            put_attempts=args.put_attempts,
            lookup_batch_size=args.batch_size,
        )
        server = BackupServer(config)
    except (ValueError, LookupError) as exc:
        raise SystemExit(f"cluster config rejected: {exc}")
    with server:
        snapshot_id = _free_snapshot_id(server.cluster)
        report = server.backup_snapshot(data, snapshot_id)
        cluster = server.cluster
        stats = report.lookup_stats
        if args.data_dir:
            print(f"persistent shards under {args.data_dir} "
                  f"({server.storage_kind} backend, snapshot "
                  f"{snapshot_id!r}; reopen with the same --nodes "
                  "to restore)")
        scheme_desc = (
            f"ec {args.ec[0]}+{args.ec[1]}" if args.placement == "ec"
            else f"{args.placement}, r={args.replication}"
        )
        print(f"backed up {report.total_bytes} B as {report.n_chunks} chunks "
              f"across {cluster.n_nodes_alive} nodes ({scheme_desc})")
        print(f"  shipped {report.shipped_bytes} B "
              f"({report.dedup_fraction:.1%} duplicate chunks)")
        print(f"  batched lookups: {stats.n_batches} batches of "
              f"<= {args.batch_size}, {stats.bloom_negatives} Bloom-filtered "
              f"misses, {stats.false_positives} false positives")
        print(f"  modeled bandwidth: {report.backup_bandwidth_gbps:.2f} Gbps "
              f"(bottleneck: {report.bottleneck})")
        table = ResultTable("Shard occupancy", ["Node", "Chunks", "Bytes", "State"])
        for node_id, node in sorted(cluster.nodes.items()):
            table.add(node_id, node.chunk_count, node.stored_bytes,
                      "up" if node.alive else "DOWN")
        print(format_table(table))
        if cluster.fault_plan is not None:
            injected = cluster.fault_plan.stats
            print(f"  chaos plan {cluster.fault_plan.describe()!r}: "
                  f"{injected.total} faults injected, "
                  f"{cluster.stats.degraded_reads} degraded reads, "
                  f"{cluster.stats.repairs_auto} auto-repairs")
        if args.fail_node:
            victim = max(
                cluster.nodes, key=lambda nid: cluster.nodes[nid].chunk_count
            )
            cluster.fail_node(victim)
            repair = cluster.repair()
            unit = "fragments" if args.placement == "ec" else "chunks"
            print(f"failure drill: killed {victim}; repair re-copied "
                  f"{repair.chunks_recopied} {unit} "
                  f"({repair.bytes_copied} B)")
            if not repair.healthy:
                print(f"  {len(repair.unrecoverable)} chunks unrecoverable "
                      f"({cluster.scheme.copies} cop"
                      f"{'y' if cluster.scheme.copies == 1 else 'ies'} per "
                      "chunk cannot survive a node loss)")
                return 1
        restored = server.agent.restore(snapshot_id)
    assert restored == data
    print("  restore verified byte-exact")
    return 0


def cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.service import BackupService, ServiceConfig

    _apply_threads(args)
    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            backend=args.backend,
            data_dir=args.data_dir,
            store_backend=args.store_backend,
            cluster_nodes=args.nodes,
            placement=args.placement,
            replication=args.replication,
            ec_k=args.ec[0],
            ec_m=args.ec[1],
            scrub_batch=args.scrub,
            max_sessions=args.max_sessions,
            queue_depth=args.queue_depth,
            faults=args.faults,
            stall_timeout_s=args.stall_timeout,
            resume_grace_s=args.resume_grace,
            drain_s=args.drain,
            heartbeat_s=args.heartbeat,
            auth_file=args.auth_file,
            rate_bytes_per_s=args.rate_limit,
            rate_ops_per_s=args.rate_ops,
            global_bytes_per_s=args.global_rate_limit,
            global_ops_per_s=args.global_rate_ops,
            quota_bytes=args.quota,
            quota_chunks=args.quota_chunks,
            quota_sessions=args.quota_sessions,
            restore_reserve=args.restore_reserve,
            hello_timeout_s=args.hello_timeout,
            brownout_lag_s=args.brownout_lag,
            breaker_threshold=args.breaker,
        )
    except (ValueError, OSError) as exc:
        raise SystemExit(f"serve config rejected: {exc}")
    if args.auth_file:
        from repro.service import AuthRegistry

        try:
            AuthRegistry.load(args.auth_file)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"--auth-file rejected: {exc}")

    async def run() -> None:
        service = BackupService(config)
        await service.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # non-POSIX event loop
                pass
        print(f"repro backup service on {config.host}:{service.port} "
              f"({service.storage_kind} backend, {config.store_backend} "
              f"store, <= {config.max_sessions} sessions)")
        print("  agent wire protocol (SHRD1) + HTTP /health /metrics "
              "on the same port; Ctrl-C or SIGTERM to stop")
        if service.auth is not None:
            print(f"  auth: {len(service.auth)} tenants from {args.auth_file}")
        if service.limits.active:
            print(f"  rate limits: {service.limits.describe()}")
        if service.quota.active:
            print(f"  tenant quotas: {service.quota.as_dict()}")
        if service.fault_plan is not None:
            print(f"  CHAOS ACTIVE: {service.fault_plan.describe()}")
        sys.stdout.flush()
        try:
            await stop.wait()
        finally:
            await service.stop()
        print("service stopped; store closed cleanly")

    asyncio.run(run())
    return 0


def cmd_scrub(args) -> int:
    from repro.store import ChunkStoreCluster
    from repro.store.schemes import make_scheme

    root = Path(args.data_dir)
    if not root.exists():
        raise SystemExit(f"data dir {args.data_dir} does not exist")
    # `repro cluster/serve --data-dir DIR` nest shards under DIR/cluster;
    # accept either the root or the cluster dir itself.
    cluster_dir = root / "cluster" if (root / "cluster").exists() else root
    try:
        cluster = ChunkStoreCluster(
            n_nodes=args.nodes,
            scheme=make_scheme(
                args.placement,
                replicas=args.replication,
                ec_k=args.ec[0],
                ec_m=args.ec[1],
            ),
            backend="disk",
            data_dir=cluster_dir,
        )
    except (ValueError, OSError) as exc:
        raise SystemExit(f"cannot open cluster at {cluster_dir}: {exc}")
    with cluster:
        report = cluster.scrub(limit=args.limit)
        stored = sum(n.chunk_count for n in cluster.nodes.values() if n.alive)
    print(f"scrubbed {report.chunks_scanned} stored items "
          f"({report.bytes_verified} B re-digested) of {stored} "
          f"across {args.nodes} shards under {cluster_dir}")
    if report.corrupt:
        print(f"  {report.corrupt} failed verification: "
              f"{report.repaired} rebuilt from "
              f"{'parity' if args.placement == 'ec' else 'replicas'}, "
              f"{report.unrepaired} left in place (no healthy source)")
    else:
        print("  every item verified clean")
    if not report.healthy:
        return 1
    return 0


def cmd_tune(args) -> int:
    from repro.core import autotune

    if args.show:
        # Read-only: report the cached entry (or the static fallback)
        # without triggering a first-use tune or any file writes.
        if not autotune.autotune_enabled():
            geometry = autotune.DEFAULT_GEOMETRY
            print("autotune disabled (REPRO_AUTOTUNE=0); static defaults:")
        else:
            geometry = autotune.load_cached()
            if geometry is None:
                geometry = autotune.DEFAULT_GEOMETRY
                print(f"no cached geometry for {autotune.host_key()} — "
                      "static defaults shown; run `repro tune` to measure:")
            else:
                print(f"cached geometry for {autotune.host_key()}:")
    else:
        if not autotune.autotune_enabled():
            raise SystemExit(
                "autotune is disabled (REPRO_AUTOTUNE=0); unset it to tune"
            )
        cached = None if args.force else autotune.load_cached()
        if cached is not None:
            geometry = cached
            print(f"cached geometry for {autotune.host_key()} "
                  "(use --force to re-measure):")
        else:
            mode = "quick" if args.quick else "full"
            print(f"measuring scan geometry ({mode} grid) ...")
            geometry = autotune.tune(quick=args.quick, persist=True, log=print)
            autotune.set_geometry(geometry)
            print(f"\nwrote {autotune.cache_path()}")
            print(f"tuned geometry for {autotune.host_key()}:")
    table = ResultTable("Striped-scan geometry", ["Knob", "Value"])
    table.add("lanes", geometry.lanes)
    table.add("tile_bytes", f"{geometry.tile_bytes} ({geometry.tile_bytes >> 20} MiB)")
    table.add("roll_steps", geometry.roll_steps)
    table.add("threads", "auto" if geometry.threads is None else geometry.threads)
    if geometry.mib_per_s is not None:
        table.add("measured MiB/s", f"{geometry.mib_per_s:.1f}")
    print(format_table(table))
    return 0


def cmd_lint(args) -> int:
    import json

    from repro.analysis.runner import run_lint

    result = run_lint(
        args.paths or ["src"],
        rules=args.rule or None,
        baseline_path=args.baseline,
    )
    if args.out or args.json:
        doc = json.dumps(result.to_dict(), indent=2, sort_keys=True)
        if args.out:
            Path(args.out).write_text(doc + "\n")
        if args.json:
            print(doc)
    if not args.json:
        for finding in result.findings:
            print(finding.format())
        for error in result.errors:
            print(f"error: {error}", file=sys.stderr)
        counts = (
            f"{result.checked_files} files checked, "
            f"{len(result.findings)} finding(s)"
        )
        if result.suppressed:
            counts += f", {result.suppressed} suppressed"
        if result.baselined:
            counts += f", {result.baselined} baselined"
        print(counts)
    return result.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shredder (FAST 2012) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_chunker_args(p):
        p.add_argument("--mask-bits", type=int, default=13,
                       help="marker mask width; expected chunk = 2^bits")
        p.add_argument("--marker", type=lambda v: int(v, 0), default=0x1A2B)
        p.add_argument("--min-size", type=int, default=0)
        p.add_argument("--max-size", type=int, default=None)

    def add_threads_arg(p):
        p.add_argument("--threads", type=int, default=None, metavar="N",
                       help="worker threads for the scan + hash pools "
                       "(0/1 = serial; default: REPRO_THREADS or CPU count)")

    def add_placement_args(p, with_striped: bool = True):
        choices = ("vanilla", "striped", "replicated", "ec") if with_striped \
            else ("vanilla", "replicated", "ec")
        p.add_argument("--placement", choices=choices, default="replicated")
        p.add_argument("--replication", type=int, default=2,
                       help="copies per chunk (replicated placement)")
        p.add_argument("--ec", type=_parse_ec, default=(4, 2), metavar="K+M",
                       help="erasure-coding geometry for --placement ec: "
                       "K data + M parity fragments per chunk, any K of "
                       "K+M reconstruct (default 4+2)")

    def add_storage_args(p):
        p.add_argument("--engine", choices=("gpu", "cpu"), default="gpu",
                       help="chunking engine (Shredder GPU model or "
                       "pthreads CPU baseline)")
        p.add_argument("--backend", choices=("memory", "disk"), default=None,
                       help="storage backend for the index/store state "
                       "(default: REPRO_STORE_BACKEND or memory; disk = "
                       "append-only chunk log + LSM digest index)")
        p.add_argument("--data-dir", default=None, metavar="DIR",
                       help="directory for disk-backed state; reopening "
                       "the same DIR restores every snapshot and dedup "
                       "decision (implies --backend disk)")

    p_chunk = sub.add_parser("chunk", help="content-based chunking of a file")
    p_chunk.add_argument("file")
    p_chunk.add_argument("--all", action="store_true", help="print every chunk")
    p_chunk.add_argument("--profile", action="store_true",
                         help="run the scan∥hash pipeline + a dedup probe "
                         "and print the per-stage time split and scan "
                         "dispatch counters")
    add_chunker_args(p_chunk)
    add_threads_arg(p_chunk)
    p_chunk.set_defaults(fn=cmd_chunk)

    p_dedup = sub.add_parser("dedup", help="cross-file dedup statistics")
    p_dedup.add_argument("file_a")
    p_dedup.add_argument("file_b")
    add_chunker_args(p_dedup)
    p_dedup.set_defaults(fn=cmd_dedup)

    p_thr = sub.add_parser("throughput", help="Figure 12 configuration table")
    p_thr.set_defaults(fn=cmd_throughput)

    p_t1 = sub.add_parser("table1", help="simulated GPU characteristics")
    p_t1.set_defaults(fn=cmd_table1)

    p_backup = sub.add_parser("backup", help="one-shot dedup backup of a file")
    p_backup.add_argument("file")
    add_storage_args(p_backup)
    p_backup.add_argument("--remote", default=None, metavar="HOST:PORT",
                          help="ship to a running `repro serve` daemon over "
                          "the wire instead of backing up in-process")
    p_backup.add_argument("--tenant", default="default",
                          help="tenant namespace for --remote (snapshots "
                          "and dedup decisions are tenant-scoped)")
    p_backup.add_argument("--retry", type=int, default=0, metavar="N",
                          help="survive connection loss: redial up to N "
                          "times per outage and resume the snapshot "
                          "without re-shipping acked chunks (--remote)")
    p_backup.add_argument("--auth-token", default="", metavar="TOKEN",
                          help="tenant HMAC token for a service running "
                          "with --auth-file (see repro.service.limits"
                          ".auth_token)")
    add_threads_arg(p_backup)
    p_backup.set_defaults(fn=cmd_backup)

    p_serve = sub.add_parser(
        "serve", help="run the multi-tenant backup service daemon"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=9451,
                         help="listen port (0 = ephemeral, printed at boot)")
    p_serve.add_argument("--backend", choices=("memory", "disk"), default=None,
                         help="storage backend for the shared store and "
                         "tenant indexes (default: REPRO_STORE_BACKEND "
                         "or memory)")
    p_serve.add_argument("--data-dir", default=None, metavar="DIR",
                         help="root for disk-backed state; restarting on "
                         "the same DIR resumes every tenant's snapshots "
                         "(implies --backend disk)")
    p_serve.add_argument("--store-backend", choices=("single", "cluster"),
                         default="single",
                         help="backup-site payload store behind the service")
    p_serve.add_argument("--nodes", type=int, default=4,
                         help="cluster shard count (--store-backend cluster)")
    add_placement_args(p_serve)
    p_serve.add_argument("--scrub", type=int, default=0, metavar="N",
                         help="stored items the background scrubber "
                         "re-verifies per heartbeat (needs --heartbeat; "
                         "0 = off)")
    p_serve.add_argument("--max-sessions", type=int, default=64,
                         help="concurrent agent sessions before BUSY")
    p_serve.add_argument("--queue-depth", type=int, default=4,
                         help="bounded per-connection ingest queue (frames); "
                         "the backpressure limit")
    p_serve.add_argument("--faults", default=None, metavar="SPEC",
                         help="chaos plan, e.g. 'seed=7,backend.io_error="
                         "0.01,wire.drop=0.02,node.kill=node-1:150' "
                         "(default: REPRO_FAULTS env; '' forces off)")
    p_serve.add_argument("--stall-timeout", type=float, default=None,
                         metavar="SECS",
                         help="evict a session that sends no frame for this "
                         "long (default: no eviction)")
    p_serve.add_argument("--resume-grace", type=float, default=30.0,
                         metavar="SECS",
                         help="how long an interrupted mid-backup session "
                         "stays parked for RESUME (0 disables resume)")
    p_serve.add_argument("--drain", type=float, default=5.0, metavar="SECS",
                         help="max wait for busy sessions to finish on "
                         "shutdown before aborting them")
    p_serve.add_argument("--heartbeat", type=float, default=None,
                         metavar="SECS",
                         help="cluster failure-detector heartbeat period "
                         "(--store-backend cluster; default: off)")
    p_serve.add_argument("--auth-file", default=None, metavar="FILE",
                         help="require HELLO auth: one 'tenant: secret' "
                         "per line; clients present the HMAC token from "
                         "repro.service.limits.auth_token(secret, tenant)")
    p_serve.add_argument("--rate-limit", type=float, default=None,
                         metavar="BYTES_PER_S",
                         help="per-tenant sustained inbound payload rate; "
                         "over-rate traffic is THROTTLEd, sustained abuse "
                         "gets RETRY_LATER")
    p_serve.add_argument("--rate-ops", type=float, default=None,
                         metavar="OPS_PER_S",
                         help="per-tenant sustained data-frame rate")
    p_serve.add_argument("--global-rate-limit", type=float, default=None,
                         metavar="BYTES_PER_S",
                         help="whole-service inbound payload rate ceiling")
    p_serve.add_argument("--global-rate-ops", type=float, default=None,
                         metavar="OPS_PER_S",
                         help="whole-service data-frame rate ceiling")
    p_serve.add_argument("--quota", type=int, default=None, metavar="BYTES",
                         help="per-tenant stored-bytes quota (durable "
                         "accounting; survives a --data-dir restart)")
    p_serve.add_argument("--quota-chunks", type=int, default=None, metavar="N",
                         help="per-tenant stored-chunk quota")
    p_serve.add_argument("--quota-sessions", type=int, default=None,
                         metavar="N",
                         help="per-tenant concurrent-session quota")
    p_serve.add_argument("--restore-reserve", type=int, default=0, metavar="N",
                         help="session slots reserved for restore traffic "
                         "(backups shed first under load; 0 = off)")
    p_serve.add_argument("--hello-timeout", type=float, default=5.0,
                         metavar="SECS",
                         help="pre-auth deadline: drop connections that "
                         "never complete HELLO (slowloris defence)")
    p_serve.add_argument("--brownout-lag", type=float, default=None,
                         metavar="SECS",
                         help="enter brownout (wider decide batches, "
                         "deferred scrub, window=1) when event-loop lag "
                         "exceeds this (default: off)")
    p_serve.add_argument("--breaker", type=int, default=None, metavar="N",
                         help="open the store-path circuit breaker after N "
                         "consecutive store failures; open = fast "
                         "RETRY_LATER (default: off)")
    add_threads_arg(p_serve)
    p_serve.set_defaults(fn=cmd_serve)

    p_cluster = sub.add_parser(
        "cluster", help="dedup backup through the sharded chunk-store cluster"
    )
    p_cluster.add_argument("file")
    add_storage_args(p_cluster)
    p_cluster.add_argument("--nodes", type=int, default=4,
                           help="store nodes on the consistent-hash ring")
    add_placement_args(p_cluster)
    p_cluster.add_argument("--read-attempts", type=int, default=None,
                           metavar="N",
                           help="full read passes over the replica set "
                           "before a chunk is declared missing (default 3)")
    p_cluster.add_argument("--put-attempts", type=int, default=None,
                           metavar="N",
                           help="write attempts per placement target before "
                           "the error propagates (default 2)")
    p_cluster.add_argument("--batch-size", type=int, default=128,
                           help="digests per batched index lookup")
    p_cluster.add_argument("--fail-node", action="store_true",
                           help="kill the fullest node, repair, then restore")
    add_threads_arg(p_cluster)
    p_cluster.set_defaults(fn=cmd_cluster)

    p_scrub = sub.add_parser(
        "scrub",
        help="one integrity pass over a persistent cluster's shards",
    )
    p_scrub.add_argument("data_dir", metavar="DIR",
                         help="the --data-dir a `repro cluster`/`repro "
                         "serve` run persisted its shards under")
    p_scrub.add_argument("--nodes", type=int, default=4,
                         help="shard count the cluster was created with")
    add_placement_args(p_scrub)
    p_scrub.add_argument("--limit", type=int, default=None, metavar="N",
                         help="verify at most N stored items (default: "
                         "one full pass)")
    p_scrub.set_defaults(fn=cmd_scrub)

    p_tune = sub.add_parser(
        "tune", help="measure + persist the striped-scan geometry for this host"
    )
    p_tune.add_argument("--quick", action="store_true",
                        help="small grid / small buffer (CI smoke; "
                        "well under two seconds)")
    p_tune.add_argument("--force", action="store_true",
                        help="re-measure even when a cached answer exists")
    p_tune.add_argument("--show", action="store_true",
                        help="print the effective geometry without tuning")
    p_tune.set_defaults(fn=cmd_tune)

    p_lint = sub.add_parser(
        "lint",
        help="AST-based project-invariant checks over the source tree",
        description=(
            "Static analysis for the invariants generic linters don't "
            "know: zero-copy scanning on the hot path, batched-only "
            "backend probes, no blocking calls inside async def, "
            "lock-guarded shared pool state, exhaustive wire-protocol "
            "dispatch, metrics counters that reach the snapshot, and "
            "dead private helpers. Exit code: 0 clean, 1 findings, 2 "
            "internal error. Suppress one line with "
            "'# repro: lint-ok[rule] reason'."
        ),
    )
    p_lint.add_argument("paths", nargs="*", default=None, metavar="PATH",
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--rule", action="append", metavar="R",
                        help="run only rule R (repeatable); see the "
                        "ROADMAP's invariant table for rule names")
    p_lint.add_argument("--json", action="store_true",
                        help="print the full JSON report instead of "
                        "path:line findings")
    p_lint.add_argument("--out", default=None, metavar="FILE",
                        help="also write the JSON report to FILE "
                        "(CI artifact)")
    p_lint.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline file of forgiven findings "
                        "(default: ./lint-baseline.json when present)")
    p_lint.set_defaults(fn=cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
