"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``chunk FILE``      content-based chunking of a file; prints chunk table
``dedup A B``       cross-file dedup statistics (how similar are A and B?)
``throughput``      the Figure 12 configuration comparison (modeled)
``table1``          the simulated GPU's Table 1 characteristics
``backup FILE``     one-shot dedup backup of FILE against itself + stats
``cluster FILE``    dedup backup through the sharded chunk-store cluster,
                    with optional node-failure + repair drill
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.reporting import ResultTable, format_table

__all__ = ["main", "build_parser"]

GB = 1 << 30


def _read(path: str) -> bytes:
    data = Path(path).read_bytes()
    if not data:
        raise SystemExit(f"{path} is empty")
    return data


def _chunker_config(args) -> "ChunkerConfig":
    from repro.core.chunking import ChunkerConfig

    return ChunkerConfig(
        mask_bits=args.mask_bits,
        marker=args.marker & ((1 << args.mask_bits) - 1),
        min_size=args.min_size,
        max_size=args.max_size,
    )


def _apply_threads(args) -> None:
    """Plumb ``--threads`` to the scan engine and hash pool.

    ``set_threads`` governs both shared worker pools and every engine
    built afterwards (0/1 = serial).  The default (no flag) auto-detects
    from ``REPRO_THREADS`` or the host CPU count.
    """
    threads = getattr(args, "threads", None)
    if threads is not None:
        from repro.core.threads import set_threads

        try:
            set_threads(threads)
        except ValueError as exc:
            raise SystemExit(f"invalid --threads: {exc}")


def cmd_chunk(args) -> int:
    import mmap

    from repro.core import Chunker, size_stats

    _apply_threads(args)
    chunker = Chunker(_chunker_config(args))
    # Zero-copy path: chunk the file through an mmap'd memoryview — the
    # scan, boundary selection, and batched hashing all run against the
    # page cache without ever copying the payload into Python bytes.
    with open(args.file, "rb") as fh:
        try:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):  # empty file or unmappable source
            mapped = None
        if mapped is None:
            data = _read(args.file)
            chunks = chunker.chunk(data)
        else:
            view = memoryview(mapped)
            chunks = []
            try:
                chunks = chunker.chunk(view)  # digests computed batched
            finally:
                for c in chunks:
                    c.release()  # digests recorded; let the mmap go
                view.release()
                try:
                    mapped.close()
                except BufferError:
                    # An in-flight exception's traceback frames can still
                    # hold exported views; let that exception surface and
                    # leave the unmap to garbage collection.
                    pass
    stats = size_stats([c.length for c in chunks])
    table = ResultTable(
        f"Chunks of {args.file}",
        ["Offset", "Length", "Digest (prefix)"],
    )
    shown = chunks if args.all else chunks[:20]
    for c in shown:
        table.add(c.offset, c.length, c.digest.hex()[:16])
    print(format_table(table))
    if len(chunks) > len(shown):
        print(f"... {len(chunks) - len(shown)} more chunks (use --all)")
    print(
        f"{stats.count} chunks, mean {stats.mean:.0f} B "
        f"(min {stats.minimum}, max {stats.maximum})"
    )
    return 0


def cmd_dedup(args) -> int:
    from repro.core import Chunker, DedupIndex

    chunker = Chunker(_chunker_config(args))
    index = DedupIndex()
    index.add_all(chunker.chunk(_read(args.file_a)))
    unique_before = index.stats.unique_bytes
    index.add_all(chunker.chunk(_read(args.file_b)))
    stats = index.stats
    new_bytes = stats.unique_bytes - unique_before
    print(f"{args.file_b} vs {args.file_a}:")
    print(f"  shared content: {stats.duplicate_bytes} B across "
          f"{stats.duplicate_chunks} duplicate chunks")
    print(f"  new content in {args.file_b}: {new_bytes} B")
    print(f"  overall dedup ratio: {stats.dedup_ratio:.1%}")
    return 0


def cmd_throughput(args) -> int:
    from repro.core.shredder import Shredder, ShredderConfig

    table = ResultTable(
        "Modeled chunking throughput, 1 GiB stream (Figure 12)",
        ["Configuration", "GBps"],
    )
    for name, cfg in [
        ("CPU w/o Hoard", ShredderConfig.cpu(hoard=False)),
        ("CPU w/ Hoard", ShredderConfig.cpu(hoard=True)),
        ("GPU Basic", ShredderConfig.gpu_basic()),
        ("GPU Streams", ShredderConfig.gpu_streams()),
        ("GPU Streams + Memory", ShredderConfig.gpu_streams_memory()),
    ]:
        with Shredder(cfg) as shredder:
            table.add(name, shredder.simulate(GB).throughput_bps / 1e9)
    print(format_table(table))
    return 0


def cmd_table1(args) -> int:
    from repro.gpu import table1_rows

    table = ResultTable(
        "Performance characteristics of the GPU (NVidia Tesla C2050)",
        ["Parameter", "Value"],
    )
    for row in table1_rows():
        table.add(*row)
    print(format_table(table))
    return 0


def cmd_backup(args) -> int:
    from repro.backup import BackupConfig, BackupServer

    _apply_threads(args)
    data = _read(args.file)
    with BackupServer(BackupConfig(backend=args.backend)) as server:
        report = server.backup_snapshot(data, "cli")
        restored = server.agent.restore("cli")
    assert restored == data
    print(f"backed up {report.total_bytes} B as {report.n_chunks} chunks")
    print(f"  shipped {report.shipped_bytes} B "
          f"({report.dedup_fraction:.1%} duplicate chunks)")
    print(f"  modeled bandwidth: {report.backup_bandwidth_gbps:.2f} Gbps "
          f"(bottleneck: {report.bottleneck})")
    print("  restore verified byte-exact")
    return 0


def cmd_cluster(args) -> int:
    from repro.backup import BackupConfig, BackupServer

    _apply_threads(args)
    data = _read(args.file)
    try:
        config = BackupConfig(
            backend=args.backend,
            store_backend="cluster",
            cluster_nodes=args.nodes,
            placement=args.placement,
            replication=args.replication,
            lookup_batch_size=args.batch_size,
        )
        server = BackupServer(config)
    except (ValueError, LookupError) as exc:
        raise SystemExit(f"cluster config rejected: {exc}")
    with server:
        report = server.backup_snapshot(data, "cli")
        cluster = server.cluster
        stats = report.lookup_stats
        print(f"backed up {report.total_bytes} B as {report.n_chunks} chunks "
              f"across {cluster.n_nodes_alive} nodes "
              f"({args.placement}, r={args.replication})")
        print(f"  shipped {report.shipped_bytes} B "
              f"({report.dedup_fraction:.1%} duplicate chunks)")
        print(f"  batched lookups: {stats.n_batches} batches of "
              f"<= {args.batch_size}, {stats.bloom_negatives} Bloom-filtered "
              f"misses, {stats.false_positives} false positives")
        print(f"  modeled bandwidth: {report.backup_bandwidth_gbps:.2f} Gbps "
              f"(bottleneck: {report.bottleneck})")
        table = ResultTable("Shard occupancy", ["Node", "Chunks", "Bytes", "State"])
        for node_id, node in sorted(cluster.nodes.items()):
            table.add(node_id, node.chunk_count, node.stored_bytes,
                      "up" if node.alive else "DOWN")
        print(format_table(table))
        if args.fail_node:
            victim = max(
                cluster.nodes, key=lambda nid: cluster.nodes[nid].chunk_count
            )
            cluster.fail_node(victim)
            repair = cluster.repair()
            print(f"failure drill: killed {victim}; repair re-copied "
                  f"{repair.chunks_recopied} chunks "
                  f"({repair.bytes_copied} B)")
            if not repair.healthy:
                print(f"  {len(repair.unrecoverable)} chunks unrecoverable "
                      f"({cluster.scheme.copies} cop"
                      f"{'y' if cluster.scheme.copies == 1 else 'ies'} per "
                      "chunk cannot survive a node loss)")
                return 1
        restored = server.agent.restore("cli")
    assert restored == data
    print("  restore verified byte-exact")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shredder (FAST 2012) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_chunker_args(p):
        p.add_argument("--mask-bits", type=int, default=13,
                       help="marker mask width; expected chunk = 2^bits")
        p.add_argument("--marker", type=lambda v: int(v, 0), default=0x1A2B)
        p.add_argument("--min-size", type=int, default=0)
        p.add_argument("--max-size", type=int, default=None)

    def add_threads_arg(p):
        p.add_argument("--threads", type=int, default=None, metavar="N",
                       help="worker threads for the scan + hash pools "
                       "(0/1 = serial; default: REPRO_THREADS or CPU count)")

    p_chunk = sub.add_parser("chunk", help="content-based chunking of a file")
    p_chunk.add_argument("file")
    p_chunk.add_argument("--all", action="store_true", help="print every chunk")
    add_chunker_args(p_chunk)
    add_threads_arg(p_chunk)
    p_chunk.set_defaults(fn=cmd_chunk)

    p_dedup = sub.add_parser("dedup", help="cross-file dedup statistics")
    p_dedup.add_argument("file_a")
    p_dedup.add_argument("file_b")
    add_chunker_args(p_dedup)
    p_dedup.set_defaults(fn=cmd_dedup)

    p_thr = sub.add_parser("throughput", help="Figure 12 configuration table")
    p_thr.set_defaults(fn=cmd_throughput)

    p_t1 = sub.add_parser("table1", help="simulated GPU characteristics")
    p_t1.set_defaults(fn=cmd_table1)

    p_backup = sub.add_parser("backup", help="one-shot dedup backup of a file")
    p_backup.add_argument("file")
    p_backup.add_argument("--backend", choices=("gpu", "cpu"), default="gpu")
    add_threads_arg(p_backup)
    p_backup.set_defaults(fn=cmd_backup)

    p_cluster = sub.add_parser(
        "cluster", help="dedup backup through the sharded chunk-store cluster"
    )
    p_cluster.add_argument("file")
    p_cluster.add_argument("--backend", choices=("gpu", "cpu"), default="gpu")
    p_cluster.add_argument("--nodes", type=int, default=4,
                           help="store nodes on the consistent-hash ring")
    p_cluster.add_argument("--placement",
                           choices=("vanilla", "striped", "replicated"),
                           default="replicated")
    p_cluster.add_argument("--replication", type=int, default=2,
                           help="copies per chunk (replicated placement)")
    p_cluster.add_argument("--batch-size", type=int, default=128,
                           help="digests per batched index lookup")
    p_cluster.add_argument("--fail-node", action="store_true",
                           help="kill the fullest node, repair, then restore")
    add_threads_arg(p_cluster)
    p_cluster.set_defaults(fn=cmd_cluster)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
