"""Lint orchestration: index, run checkers, suppress, baseline, sort."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.index import ModuleIndex, discover_files
from repro.analysis.model import Finding, apply_baseline, load_baseline
from repro.analysis.registry import LintContext, all_checkers

__all__ = ["LintResult", "run_lint"]

#: Repo-root baseline file name (shipped empty: fix, don't baseline).
DEFAULT_BASELINE = "lint-baseline.json"

#: Directories always added to the parse universe when they exist under
#: the root: whole-repo rules (dead code, protocol/metrics coverage)
#: need to see callers outside the linted paths, or a helper used only
#: by tests would be declared dead.
UNIVERSE_DIRS = ("src", "tests", "benchmarks", "examples")


@dataclass
class LintResult:
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    checked_files: int = 0
    #: Internal errors (unparseable file, checker crash): exit code 2.
    errors: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "counts": {
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "checked_files": self.checked_files,
            },
            "errors": self.errors,
        }


def run_lint(
    paths: list[str | Path],
    *,
    root: str | Path | None = None,
    rules: list[str] | None = None,
    baseline_path: str | Path | None = None,
) -> LintResult:
    """Run the registered checkers and report findings under ``paths``.

    The parse universe is ``paths`` plus the standard repo directories
    under ``root`` (so cross-module rules see everything); findings are
    reported only for files inside ``paths``.  ``rules`` restricts the
    run to the named checkers; ``baseline_path`` (default: the root's
    ``lint-baseline.json`` when present) forgives known findings.
    """
    result = LintResult()
    root = Path(root) if root is not None else Path.cwd()
    root = root.resolve()
    requested = [Path(p) if Path(p).is_absolute() else root / p for p in paths]
    for path in requested:
        if not path.exists():
            result.errors.append(f"path does not exist: {path}")
            return result
    universe = list(requested)
    for name in UNIVERSE_DIRS:
        extra = root / name
        if extra.is_dir():
            universe.append(extra)
    checkers = all_checkers()
    if rules:
        unknown = [r for r in rules if r not in checkers]
        if unknown:
            known = ", ".join(sorted(checkers))
            result.errors.append(
                f"unknown rule(s) {', '.join(unknown)} — known: {known}"
            )
            return result
        checkers = {name: checkers[name] for name in rules}

    index = ModuleIndex(discover_files(universe), root)
    for rel, message in index.broken:
        result.errors.append(f"failed to parse {rel}: {message}")
    report_files = {
        f.resolve() for f in discover_files(requested)
    }
    report_rels = {
        m.rel for m in index.modules if m.path in report_files
    }
    result.checked_files = len(report_rels)

    ctx = LintContext(index)
    raw: list[Finding] = []
    for name, cls in sorted(checkers.items()):
        try:
            raw.extend(cls().check(ctx))
        except Exception as exc:  # noqa: BLE001 — a broken rule is exit 2
            result.errors.append(
                f"checker {name!r} crashed: {type(exc).__name__}: {exc}"
            )

    kept: list[Finding] = []
    for finding in raw:
        if finding.path not in report_rels:
            continue
        module = index.by_rel.get(finding.path)
        if module is not None and module.is_suppressed(
            finding.rule, finding.line
        ):
            result.suppressed += 1
            continue
        kept.append(finding)

    if baseline_path is None:
        default = root / DEFAULT_BASELINE
        baseline_path = default if default.is_file() else None
    if baseline_path is not None:
        try:
            baseline = load_baseline(Path(baseline_path))
        except (OSError, ValueError) as exc:
            result.errors.append(f"bad baseline: {exc}")
            return result
        kept, result.baselined = apply_baseline(kept, baseline)

    result.findings = sorted(kept, key=lambda f: (f.path, f.line, f.rule))
    return result
