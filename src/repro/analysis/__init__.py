"""Project-invariant static analysis (`repro lint`).

A stdlib-``ast`` checker framework that machine-checks the invariants
the rest of the codebase only promises in prose: zero-copy scanning on
the hot path, batched-only backend probes, a blocking-call-free asyncio
service, lock-ordered shared pool state, exhaustive wire-protocol
dispatch, and metrics counters that actually reach the snapshot.

Layout:

* :mod:`repro.analysis.index` — one shared parse of every source file
  (AST + suppression comments), built once per run.
* :mod:`repro.analysis.graph` — a lightweight name-reference graph over
  the parsed universe (definitions, ``Name``/``Attribute`` references,
  ``__all__`` exports) that keeps whole-repo rules O(repo).
* :mod:`repro.analysis.registry` — the checker plugin registry; a new
  rule is a ~50-line :class:`~repro.analysis.registry.Checker`
  subclass decorated with ``@register``.
* :mod:`repro.analysis.rules_core` / ``rules_service`` /
  ``rules_deadcode`` — the shipped rules.
* :mod:`repro.analysis.runner` — orchestration: build index, run
  checkers, apply suppressions + baseline, sort findings.

Suppression syntax — on the offending line or the line above::

    data = bytes(view)  # repro: lint-ok[zero-copy] materialization API

``lint-ok[*]`` silences every rule for that line.  The baseline file
(``lint-baseline.json`` at the repo root, a JSON list of
``{"rule", "path", "message"}`` objects) grandfathers findings without
touching the source; CI fails on anything not in it.  The shipped
baseline is empty — violations get fixed, not baselined away.
"""

from repro.analysis.model import Finding
from repro.analysis.runner import LintResult, run_lint

__all__ = ["Finding", "LintResult", "run_lint"]
