"""Rules guarding the chunking core's performance invariants."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.index import SourceModule, dotted_name
from repro.analysis.model import Finding
from repro.analysis.registry import Checker, LintContext, register

#: Modules on the scan fast path: every byte copied here is paid per
#: input byte, so materialization must be explicit and justified.
HOT_PATH_SUFFIXES = (
    "core/engines.py",
    "core/pipeline.py",
    "core/chunking.py",
    "core/buffers.py",
)

_LOOPS = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def _is_bytes_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, bytes)


@register
class ZeroCopyChecker(Checker):
    """No implicit byte copies inside the hot-path modules."""

    name = "zero-copy"
    description = (
        "flags bytes()/bytearray() materialization, .tobytes(), and "
        "bytes-concatenation in the hot-path core modules"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for module in ctx.index.matching(HOT_PATH_SUFFIXES):
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in ("bytes", "bytearray")
                    and node.args
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{func.id}(...) copies its buffer on the hot "
                        "path — pass the view through, or suppress with "
                        "a reason if this materialization is the API",
                    )
                elif isinstance(func, ast.Attribute) and func.attr == "tobytes":
                    yield self.finding(
                        module,
                        node,
                        ".tobytes() copies the array on the hot path — "
                        "keep the ndarray/memoryview form",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                if _is_bytes_literal(node.left) or _is_bytes_literal(node.right):
                    yield self.finding(
                        module,
                        node,
                        "bytes concatenation allocates and copies both "
                        "operands — build views or join once at the edge",
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Add
            ):
                if _is_bytes_literal(node.value):
                    yield self.finding(
                        module,
                        node,
                        "in-place bytes concatenation reallocates the "
                        "whole accumulator per step",
                    )


#: Per-item methods with a batched twin: calling the left side inside a
#: loop is one round trip (or one index probe) per item where one
#: batched call would do.
PER_ITEM_TO_BATCH = {
    "has_chunk": "has_chunks",
    "lookup": "lookup_batch",
    "lookup_or_insert": "lookup_or_insert_batch",
    "contains": "contains_batch",
    "probe": "lookup_batch",
}


@register
class BatchedApiChecker(Checker):
    """Per-item backend/index calls must not hide inside loops."""

    name = "batched-api"
    description = (
        "flags per-item ChunkBackend/DedupIndex/cluster calls inside "
        "loops where a *_batch twin exists"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for module in ctx.index.modules:
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            twin = PER_ITEM_TO_BATCH.get(func.attr)
            if twin is None:
                continue
            if not any(
                isinstance(anc, _LOOPS) for anc in module.ancestors(node)
            ):
                continue
            # The batch implementation itself is allowed to loop: skip
            # calls whose enclosing function *is* the batched twin (or
            # the plural form of the same verb).
            enclosing = module.enclosing_function(node)
            if enclosing is not None and enclosing.name in (
                twin,
                func.attr + "s",
            ):
                continue
            yield self.finding(
                module,
                node,
                f".{func.attr}(...) per item inside a loop — use the "
                f"batched twin .{twin}(...) for the whole sequence",
            )


def _mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("dict", "list", "set", "defaultdict", "deque")
    return False


def _is_lock_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and name.split(".")[-1] in ("Lock", "RLock")


#: Modules whose module-level caches and pool state carry a designated
#: lock (the paper's single-Store-thread discipline, made checkable).
LOCKED_STATE_SUFFIXES = (
    "core/threads.py",
    "core/engines.py",
    "core/hashing.py",
)

_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
    }
)


@register
class LockDisciplineChecker(Checker):
    """Module-level shared state mutates only under its lock, and
    nested lock acquisitions follow one global order."""

    name = "lock-discipline"
    description = (
        "module-level caches/pool state in the core modules must be "
        "mutated under a designated lock; nested lock acquisitions "
        "must not reverse each other"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        #: (outer, inner) -> first witness, across all checked modules.
        order: dict[tuple[str, str], tuple[SourceModule, int]] = {}
        for module in ctx.index.matching(LOCKED_STATE_SUFFIXES):
            locks, state = self._module_surface(module)
            if state:
                yield from self._check_mutations(module, locks, state)
            yield from self._check_lock_order(module, locks, order)

    # -- surface discovery ---------------------------------------------

    def _module_surface(
        self, module: SourceModule
    ) -> tuple[set[str], set[str]]:
        """(designated locks, guarded state names) for one module.

        Locks are module-level ``threading.Lock()``/``RLock()``
        assignments.  Guarded state is any module-level name bound to a
        mutable literal, plus any module-level name some function
        re-binds through a ``global`` declaration.
        """
        locks: set[str] = set()
        mutable: set[str] = set()
        module_names: set[str] = set()
        for stmt in module.tree.body:
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not isinstance(target, ast.Name) or (
                    target.id.startswith("__") and target.id.endswith("__")
                ):
                    continue
                module_names.add(target.id)
                if _is_lock_ctor(value):
                    locks.add(target.id)
                elif _mutable_literal(value):
                    mutable.add(target.id)
        globals_declared: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
        state = mutable | (globals_declared & module_names)
        return locks, state - locks

    # -- unlocked mutations --------------------------------------------

    def _check_mutations(
        self, module: SourceModule, locks: set[str], state: set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            mutated = self._mutated_name(module, node, state)
            if mutated is None:
                continue
            if module.enclosing_function(node) is None:
                continue  # module-level initialization is single-threaded
            if not locks:
                yield self.finding(
                    module,
                    node,
                    f"module-level state {mutated!r} is mutated at "
                    "runtime but this module declares no "
                    "threading.Lock to guard it",
                )
            elif not self._under_lock(module, node, locks):
                yield self.finding(
                    module,
                    node,
                    f"shared state {mutated!r} mutated outside "
                    f"`with {'/'.join(sorted(locks))}:` — races with "
                    "the locked writers",
                )

    def _mutated_name(
        self, module: SourceModule, node: ast.AST, state: set[str]
    ) -> str | None:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in state:
                    # A plain Name store inside a function only hits the
                    # module global through a ``global`` declaration.
                    func = module.enclosing_function(node)
                    if func is not None and _declares_global(func, target.id):
                        return target.id
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in state
                ):
                    return target.value.id
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in state
            ):
                return func.value.id
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in state
                ):
                    return target.value.id
        return None

    def _under_lock(
        self, module: SourceModule, node: ast.AST, locks: set[str]
    ) -> bool:
        for anc in module.ancestors(node):
            if isinstance(anc, ast.With):
                for item in anc.items:
                    name = dotted_name(item.context_expr)
                    if name is not None and name.split(".")[-1] in locks:
                        return True
        return False

    # -- lock ordering -------------------------------------------------

    def _check_lock_order(
        self,
        module: SourceModule,
        locks: set[str],
        order: dict[tuple[str, str], tuple[SourceModule, int]],
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.With):
                continue
            inner = self._lock_names(node, locks)
            if not inner:
                continue
            for anc in module.ancestors(node):
                if not isinstance(anc, ast.With):
                    continue
                for outer_name in self._lock_names(anc, locks):
                    for inner_name in inner:
                        if inner_name == outer_name:
                            continue
                        edge = (outer_name, inner_name)
                        reverse = (inner_name, outer_name)
                        if reverse in order:
                            other_module, other_line = order[reverse]
                            yield self.finding(
                                module,
                                node,
                                f"lock order {outer_name!r} -> "
                                f"{inner_name!r} reverses the "
                                f"{inner_name!r} -> {outer_name!r} "
                                f"nesting at {other_module.rel}:"
                                f"{other_line} — pick one global order",
                            )
                        else:
                            order.setdefault(edge, (module, node.lineno))

    def _lock_names(self, node: ast.With, locks: set[str]) -> list[str]:
        names = []
        for item in node.items:
            name = dotted_name(item.context_expr)
            if name is not None and name.split(".")[-1] in locks:
                names.append(name.split(".")[-1])
        return names


def _declares_global(
    func: ast.FunctionDef | ast.AsyncFunctionDef, name: str
) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Global) and name in node.names:
            return True
    return False
