"""Lightweight call/attribute reference graph over the parsed universe.

One pass over every module collects (a) definitions — module-level and
class-level functions/classes with their lines — and (b) references —
every ``Name`` load, every ``Attribute`` attr, and every string
constant that looks like an identifier (``getattr(obj, "has_chunks")``
and dict-dispatch-by-name patterns count as uses).  Checkers that need
whole-repo visibility (dead code, batched-API twins) query this instead
of re-walking every tree.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.index import ModuleIndex, SourceModule

__all__ = ["RefGraph"]


@dataclass
class Definition:
    """One def/class worth tracking for reachability."""

    name: str
    rel: str
    line: int
    kind: str  # "function" | "class"
    #: Qualified within the module, e.g. "ChunkStore.has_chunk".
    qualname: str
    #: Class-level (method) or module-level?
    in_class: bool
    decorated: bool


@dataclass
class ModuleRefs:
    """Per-module reference bag."""

    names: Counter = field(default_factory=Counter)
    exports: list[str] = field(default_factory=list)


class RefGraph:
    def __init__(self, index: ModuleIndex) -> None:
        self.definitions: list[Definition] = []
        #: Global use counts by bare name (Name loads + Attribute attrs
        #: + identifier-shaped string constants).
        self.refs: Counter = Counter()
        #: The same, partitioned by module (for export-reachability).
        self.module_refs: dict[str, ModuleRefs] = {}
        for module in index.modules:
            self._scan(module)

    def _scan(self, module: SourceModule) -> None:
        refs = ModuleRefs()
        self.module_refs[module.rel] = refs
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                refs.names[node.id] += 1
            elif isinstance(node, ast.Attribute):
                refs.names[node.attr] += 1
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                if node.value.isidentifier():
                    refs.names[node.value] += 1
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                parent = module.parents.get(node)
                if isinstance(parent, ast.ClassDef):
                    qual = f"{parent.name}.{node.name}"
                    in_class = True
                elif isinstance(parent, ast.Module):
                    qual = node.name
                    in_class = False
                else:
                    continue  # nested defs: closure-local, skip
                self.definitions.append(
                    Definition(
                        name=node.name,
                        rel=module.rel,
                        line=node.lineno,
                        kind=(
                            "class"
                            if isinstance(node, ast.ClassDef)
                            else "function"
                        ),
                        qualname=qual,
                        in_class=in_class,
                        decorated=bool(node.decorator_list),
                    )
                )
        refs.exports = _module_exports(module)
        self.refs.update(refs.names)

    def uses(self, name: str) -> int:
        """Whole-universe use count of a bare name.

        Definitions themselves don't count (a def is a binding, not a
        Load), but a recursive self-call does — acceptable: a helper
        only it calls still shows up as a single-component island in
        review, and never deleting a recursive helper is the safe side.
        """
        return self.refs[name]

    def uses_outside(self, name: str, rel: str) -> int:
        """Use count of ``name`` everywhere except module ``rel``."""
        own = self.module_refs.get(rel)
        return self.refs[name] - (own.names[name] if own else 0)


def _module_exports(module: SourceModule) -> list[str]:
    for node in module.tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple)):
                    return [
                        elt.value
                        for elt in value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    ]
    return []
