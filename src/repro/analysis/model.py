"""Finding record and the baseline file format."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Finding", "load_baseline", "apply_baseline"]


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored at a source line."""

    rule: str
    #: Repo-relative posix path when the file sits under the lint root,
    #: absolute posix path otherwise (fixture trees in tests).
    path: str
    line: int
    message: str

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: line numbers shift on unrelated edits, so
        a baselined finding matches on (rule, path, message) only."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        """The clickable ``path:line`` shape the other CLI output uses."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


def load_baseline(path: Path) -> list[tuple[str, str, str]]:
    """Baseline keys from a JSON list of finding objects.

    Returns a *list* (not a set): two identical findings in different
    spots baseline independently — one entry forgives one finding.
    """
    doc = json.loads(path.read_text())
    if not isinstance(doc, list):
        raise ValueError(f"baseline {path} must be a JSON list")
    keys = []
    for entry in doc:
        try:
            keys.append((entry["rule"], entry["path"], entry["message"]))
        except (TypeError, KeyError):
            raise ValueError(
                f"baseline {path}: each entry needs rule/path/message"
            ) from None
    return keys


def apply_baseline(
    findings: list[Finding], baseline: list[tuple[str, str, str]]
) -> tuple[list[Finding], int]:
    """Split findings into (unbaselined, count-baselined-away)."""
    budget: dict[tuple[str, str, str], int] = {}
    for key in baseline:
        budget[key] = budget.get(key, 0) + 1
    fresh: list[Finding] = []
    matched = 0
    for finding in findings:
        key = finding.key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched += 1
        else:
            fresh.append(finding)
    return fresh, matched
