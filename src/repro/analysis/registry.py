"""Checker plugin registry and the shared lint context.

A rule is a :class:`Checker` subclass with a ``name``, a one-line
``description``, and a ``check(ctx)`` generator of findings — register
it with ``@register`` and ``repro lint`` picks it up.  ``ctx`` hands
every rule the same parsed index and (lazily built) reference graph, so
adding a rule costs one tree walk, not one parse.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.graph import RefGraph
from repro.analysis.index import ModuleIndex
from repro.analysis.model import Finding

__all__ = ["Checker", "LintContext", "register", "all_checkers"]

_REGISTRY: dict[str, type["Checker"]] = {}


class LintContext:
    def __init__(self, index: ModuleIndex) -> None:
        self.index = index
        self._graph: RefGraph | None = None

    @property
    def graph(self) -> RefGraph:
        """The reference graph, built on first use and shared after."""
        if self._graph is None:
            self._graph = RefGraph(self.index)
        return self._graph


class Checker:
    """Base class for one lint rule."""

    #: Rule id — what goes in ``--rule`` and ``lint-ok[...]`` brackets.
    name: str = ""
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module, node, message: str) -> Finding:
        """A finding anchored at ``node`` (an AST node or a line int)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            rule=self.name, path=module.rel, line=line, message=message
        )


def register(cls: type[Checker]) -> type[Checker]:
    if not cls.name:
        raise ValueError(f"checker {cls.__name__} needs a name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_checkers() -> dict[str, type[Checker]]:
    """Every registered rule, importing the rule modules on first call."""
    # Import for the registration side effect; idempotent.
    from repro.analysis import (  # noqa: F401
        rules_core,
        rules_deadcode,
        rules_service,
    )

    return dict(_REGISTRY)
