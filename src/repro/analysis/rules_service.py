"""Rules guarding the asyncio service layer's liveness and wire contract."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.index import SourceModule, dotted_name
from repro.analysis.model import Finding
from repro.analysis.registry import Checker, LintContext, register

#: Calls that block the event loop.  Dotted forms match the full chain
#: suffix (``time.sleep`` also catches ``import time as t; t.sleep``
#: only when the attribute chain spells it out — name-resolution-free
#: by design, same tradeoff every lexical linter makes).
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.fdatasync",
        "os.sync",
        "subprocess.run",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
        "urllib.request.urlopen",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.rmtree",
    }
)

#: Attribute calls that block regardless of receiver spelling.
_BLOCKING_METHODS = frozenset({"acquire"})


@register
class AsyncBlockingChecker(Checker):
    """No blocking calls lexically inside ``async def`` in the service
    and store layers — one ``time.sleep`` stalls every session."""

    name = "async-blocking"
    description = (
        "flags time.sleep, synchronous file I/O, os.fsync, lock "
        ".acquire(), and known-heavy calls inside async def across "
        "service/ and store/"
    )

    _SCOPES = ("service", "store")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for module in ctx.index.modules:
            parts = module.rel.split("/")
            if not any(scope in parts for scope in self._SCOPES):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_async_body(module, node)

    def _check_async_body(
        self, module: SourceModule, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        # Walk the async function but stop at nested *sync* defs: those
        # run on worker threads (thread targets, executor submits),
        # where blocking is the whole point.
        stack: list[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, ast.FunctionDef):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call):
                continue
            called = dotted_name(node.func)
            if called is not None:
                hit = next(
                    (
                        b
                        for b in _BLOCKING_CALLS
                        if called == b or called.endswith("." + b)
                    ),
                    None,
                )
                if hit is not None:
                    yield self.finding(
                        module,
                        node,
                        f"{hit}() blocks the event loop inside async "
                        f"def {func.name} — every session stalls behind "
                        "it; use the asyncio equivalent or a thread",
                    )
                    continue
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                yield self.finding(
                    module,
                    node,
                    f"synchronous open() inside async def {func.name} "
                    "— file I/O blocks the loop; do it on a thread",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_METHODS
            ):
                yield self.finding(
                    module,
                    node,
                    f".{node.func.attr}() blocks inside async def "
                    f"{func.name} — use an asyncio.Lock (await-able) "
                    "instead of a thread lock",
                )


#: Frames whose payload is raw/empty — no encode_/decode_ pair to demand.
_RAW_FRAMES = frozenset(
    {"BEGIN_OK", "RESTORE_DATA", "RESTORE_END", "LIST_SNAPSHOTS"}
)
#: Frames whose codec functions don't share the member's spelling.
_CODEC_ALIASES = {
    "BEGIN_SNAPSHOT": "begin",
    "FINISH": "snapshot_id",
    "RESTORE": "snapshot_id",
}
#: Frames only a protocol-v3 peer may receive: every server send site
#: must sit under a version check.
_V3_ONLY = frozenset({"THROTTLE"})


@register
class ProtocolExhaustivenessChecker(Checker):
    """Every opcode fully plumbed: codec, server arm, client handler."""

    name = "protocol"
    description = (
        "every Msg opcode needs an encoder, a decoder, a server "
        "dispatch arm, and a client handler; every Err handled; "
        "v3-only frames version-gated"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        protocol = ctx.index.find("service/protocol.py")
        if protocol is None:
            return
        server = ctx.index.find("service/server.py")
        client = ctx.index.find("service/client.py")
        msgs = _enum_members(protocol, "Msg")
        errs = _enum_members(protocol, "Err")
        codecs = {
            node.name
            for node in protocol.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for name, line in msgs.items():
            if name not in _RAW_FRAMES:
                base = _CODEC_ALIASES.get(name, name.lower())
                for prefix, what in (("encode_", "encoder"), ("decode_", "decoder")):
                    if prefix + base not in codecs:
                        yield self.finding(
                            protocol,
                            line,
                            f"Msg.{name} has no {what} "
                            f"({prefix}{base}) in protocol.py",
                        )
            for module, side in ((server, "server dispatch arm"), (client, "client handler")):
                if module is not None and not _references_member(
                    module, "Msg", name
                ):
                    yield self.finding(
                        protocol,
                        line,
                        f"Msg.{name} has no {side} ({module.rel} never "
                        f"references Msg.{name})",
                    )
        for name, line in errs.items():
            handled = any(
                module is not None and _references_member(module, "Err", name)
                for module in (server, client)
            )
            if not handled:
                yield self.finding(
                    protocol,
                    line,
                    f"Err.{name} is never handled by the server or "
                    "client — wire it up or suppress with a reason",
                )
        if server is not None:
            for name in sorted(_V3_ONLY & msgs.keys()):
                yield from self._check_version_gated(server, protocol, name, msgs[name])

    def _check_version_gated(
        self,
        server: SourceModule,
        protocol: SourceModule,
        member: str,
        line: int,
    ) -> Iterator[Finding]:
        for node in ast.walk(server.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == member
                and isinstance(node.value, ast.Name)
                and node.value.id == "Msg"
            ):
                if not self._under_version_check(server, node):
                    yield self.finding(
                        server,
                        node,
                        f"Msg.{member} is v3-only but this send site is "
                        "not inside a peer-version check — a v2 client "
                        "would receive a frame it cannot parse",
                    )

    def _under_version_check(
        self, module: SourceModule, node: ast.AST
    ) -> bool:
        for anc in module.ancestors(node):
            if isinstance(anc, ast.If) and _mentions_version(anc.test):
                return True
        return False


def _mentions_version(test: ast.AST) -> bool:
    for node in ast.walk(test):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and "version" in name.lower():
            return True
    return False


def _enum_members(module: SourceModule, class_name: str) -> dict[str, int]:
    """Name -> line of int-valued members of an enum-style class."""
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            members: dict[str, int] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            members[target.id] = stmt.lineno
            return members
    return {}


def _references_member(
    module: SourceModule, class_name: str, member: str
) -> bool:
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == member
            and dotted_name(node.value) is not None
            and dotted_name(node.value).split(".")[-1] == class_name
        ):
            return True
    return False


@register
class MetricsCoverageChecker(Checker):
    """Every counter incremented anywhere must reach the snapshot."""

    name = "metrics"
    description = (
        "every ServiceMetrics.add() keyword must be a declared counter "
        "field, every tenant counter a declared field, and every "
        "latency op an existing histogram series"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        metrics = ctx.index.find("service/metrics.py")
        if metrics is None:
            return
        fields = _dataclass_fields(metrics, "ServiceMetrics")
        latency_ops = _latency_keys(metrics, "ServiceMetrics")
        tenant = ctx.index.find("service/tenant.py")
        counter_fields = (
            _counter_dataclass_fields(tenant) if tenant is not None else None
        )
        for module in ctx.index.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    yield from self._check_call(
                        module, node, fields, latency_ops
                    )
                elif isinstance(node, ast.AugAssign) and counter_fields is not None:
                    yield from self._check_counter(
                        module, node, counter_fields
                    )
                elif isinstance(node, ast.Assign):
                    yield from self._check_latency_map(
                        module, node, latency_ops
                    )

    def _check_call(
        self,
        module: SourceModule,
        node: ast.Call,
        fields: set[str],
        latency_ops: set[str],
    ) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = dotted_name(func.value)
        if func.attr == "add" and receiver is not None and (
            receiver == "metrics" or receiver.endswith(".metrics")
        ):
            for kw in node.keywords:
                if kw.arg is not None and kw.arg not in fields:
                    yield self.finding(
                        module,
                        node,
                        f"metrics.add({kw.arg}=...) increments a "
                        "counter ServiceMetrics does not declare — it "
                        "never reaches the /metrics snapshot",
                    )
        elif func.attr == "observe_latency" and node.args:
            op = node.args[0]
            if isinstance(op, ast.Constant) and isinstance(op.value, str):
                if op.value not in latency_ops:
                    yield self.finding(
                        module,
                        node,
                        f"observe_latency({op.value!r}, ...) has no "
                        "histogram series in ServiceMetrics.latency",
                    )

    def _check_counter(
        self,
        module: SourceModule,
        node: ast.AugAssign,
        counter_fields: set[str],
    ) -> Iterator[Finding]:
        target = node.target
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Attribute)
            and target.value.attr == "counters"
            and target.attr not in counter_fields
        ):
            yield self.finding(
                module,
                node,
                f"counters.{target.attr} is incremented but not a "
                "declared tenant counter field — it never reaches the "
                "snapshot",
            )

    def _check_latency_map(
        self, module: SourceModule, node: ast.Assign, latency_ops: set[str]
    ) -> Iterator[Finding]:
        """String values of ``*_LATENCY_OPS`` maps must be real series
        (covers op names that reach observe_latency via a dict)."""
        names = [
            t.id
            for t in node.targets
            if isinstance(t, ast.Name) and "LATENCY_OPS" in t.id
        ]
        if not names or not isinstance(node.value, ast.Dict):
            return
        for value in node.value.values:
            if (
                isinstance(value, ast.Constant)
                and isinstance(value.value, str)
                and value.value not in latency_ops
            ):
                yield self.finding(
                    module,
                    node,
                    f"latency op {value.value!r} in {names[0]} has no "
                    "histogram series in ServiceMetrics.latency",
                )


def _dataclass_fields(module: SourceModule, class_name: str) -> set[str]:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            }
    return set()


def _latency_keys(module: SourceModule, class_name: str) -> set[str]:
    """Keys of the ``self.latency = {...}`` histogram map."""
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
            and node.targets[0].attr == "latency"
            and isinstance(node.value, ast.Dict)
        ):
            return {
                key.value
                for key in node.value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
    return set()


def _counter_dataclass_fields(module: SourceModule) -> set[str] | None:
    """Fields of the tenant counters dataclass (name contains
    'Counters'); None when the module defines no such class."""
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and "Counters" in node.name:
            return {
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            }
    return None
