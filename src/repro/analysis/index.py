"""The shared parsed-module index.

Every checker works from one parse of each file: the AST, a parent map
(``ast`` nodes don't know their ancestors), and the suppression
comments extracted with :mod:`tokenize` (the AST drops comments).
Building this once keeps the whole run O(repo) no matter how many
rules are registered.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path

__all__ = ["SourceModule", "ModuleIndex", "dotted_name"]

#: ``# repro: lint-ok[rule]`` or ``lint-ok[rule-a, rule-b]`` or
#: ``lint-ok[*]``; anything after the closing bracket is the reason.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ok\[([^\]]+)\]")


class SourceModule:
    """One parsed source file plus the comment-level metadata."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        #: line -> set of suppressed rule names ("*" = all rules).
        self.suppressions: dict[int, set[str]] = {}
        for match, line in _iter_suppress_comments(source):
            rules = {part.strip() for part in match.split(",") if part.strip()}
            self.suppressions.setdefault(line, set()).update(rules)
        #: child -> parent for every AST node (lexical-ancestor walks).
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def ancestors(self, node: ast.AST):
        """Lexical ancestors of ``node``, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(self, node: ast.AST):
        """The nearest (async) function def containing ``node``."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def is_suppressed(self, rule: str, line: int) -> bool:
        """A suppression comment applies to its own line and the next
        (so a comment above the statement works too)."""
        for at in (line, line - 1):
            rules = self.suppressions.get(at)
            if rules and (rule in rules or "*" in rules):
                return True
        return False


def _iter_suppress_comments(source: str):
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                match = _SUPPRESS_RE.search(tok.string)
                if match:
                    yield match.group(1), tok.start[0]
    except tokenize.TokenError:  # pragma: no cover — ast.parse caught it
        return


class ModuleIndex:
    """All parsed modules for one lint run, keyed by relative path."""

    def __init__(self, files: list[Path], root: Path) -> None:
        self.root = root
        self.modules: list[SourceModule] = []
        #: Files that failed to parse: (rel, message) — surfaced as
        #: internal errors, never silently skipped.
        self.broken: list[tuple[str, str]] = []
        seen: set[Path] = set()
        for path in files:
            path = path.resolve()
            if path in seen:
                continue
            seen.add(path)
            rel = _relative(path, root)
            try:
                source = path.read_text(encoding="utf-8")
                self.modules.append(SourceModule(path, rel, source))
            except (OSError, SyntaxError, ValueError) as exc:
                self.broken.append((rel, f"{type(exc).__name__}: {exc}"))
        self.by_rel = {m.rel: m for m in self.modules}

    def find(self, suffix: str) -> SourceModule | None:
        """The unique module whose path ends with ``suffix`` (posix),
        e.g. ``find("service/protocol.py")``; None when absent."""
        matches = [m for m in self.modules if _ends_with(m.rel, suffix)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            return None
        # Ambiguity (a fixture copy next to the real tree): prefer the
        # shortest path — the real module sits closest to the root.
        return min(matches, key=lambda m: len(m.rel))

    def matching(self, suffixes: tuple[str, ...]) -> list[SourceModule]:
        """Every module whose path ends with one of ``suffixes``."""
        return [
            m
            for m in self.modules
            if any(_ends_with(m.rel, s) for s in suffixes)
        ]


def _ends_with(rel: str, suffix: str) -> bool:
    return rel == suffix or rel.endswith("/" + suffix)


def _relative(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def discover_files(paths: list[Path]) -> list[Path]:
    """Python files under ``paths`` (files taken as-is, dirs recursed),
    sorted for deterministic finding order."""
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    return out
