"""Dead-code detection over the shared reference graph."""

from __future__ import annotations

from typing import Iterator

from repro.analysis.model import Finding
from repro.analysis.registry import Checker, LintContext, register


@register
class DeadCodeChecker(Checker):
    """Private helpers and declared exports nobody references.

    Reference counting is name-based over the whole indexed universe
    (``src`` + ``tests`` + ``benchmarks`` + ``examples``): ``Name``
    loads, ``Attribute`` accesses, and identifier-shaped string
    constants (``getattr``/dispatch-by-name) all count as uses, so the
    rule errs on the side of keeping code.  Documented reference
    implementations stay with a ``lint-ok[dead-code]`` suppression.
    """

    name = "dead-code"
    description = (
        "flags private functions/classes with zero references and "
        "__all__ exports never used outside their module"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        graph = ctx.graph
        for definition in graph.definitions:
            name = definition.name
            if not name.startswith("_"):
                continue
            if name.startswith("__") and name.endswith("__"):
                continue  # dunder protocol methods are called implicitly
            if definition.decorated:
                continue  # decorators register/route; the def is a use
            if graph.uses(name) == 0:
                where = "method" if definition.in_class else "helper"
                module = ctx.index.by_rel[definition.rel]
                yield self.finding(
                    module,
                    definition.line,
                    f"private {where} {definition.qualname!r} is never "
                    "referenced anywhere in the repo — delete it, or "
                    "suppress with a reason if it documents a "
                    "reference implementation",
                )
        for rel, refs in graph.module_refs.items():
            module = ctx.index.by_rel[rel]
            for export in refs.exports:
                if graph.uses_outside(export, rel) == 0:
                    yield Finding(
                        rule=self.name,
                        path=rel,
                        line=_export_line(module, export),
                        message=(
                            f"__all__ export {export!r} is never "
                            "referenced outside its module — unexport "
                            "or delete it"
                        ),
                    )


def _export_line(module, export: str) -> int:
    import ast

    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Constant)
            and node.value == export
        ):
            return node.lineno
    return 1
