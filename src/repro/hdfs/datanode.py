"""DataNode: stores block replicas (in memory) for the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdfs.errors import BlockNotFound, DataNodeDown

__all__ = ["DataNode"]


@dataclass
class DataNode:
    """One storage node.

    Blocks are immutable byte strings keyed by block id.  ``fail()`` /
    ``recover()`` support failure-injection tests; a failed node rejects
    all I/O but keeps its data (as a crashed-but-recoverable machine
    would).
    """

    node_id: int
    _blocks: dict[int, bytes] = field(default_factory=dict)
    alive: bool = True

    def _check_alive(self) -> None:
        if not self.alive:
            raise DataNodeDown(f"datanode {self.node_id} is down")

    def store_block(self, block_id: int, data: bytes) -> None:
        self._check_alive()
        self._blocks[block_id] = bytes(data)

    def read_block(self, block_id: int) -> bytes:
        self._check_alive()
        try:
            return self._blocks[block_id]
        except KeyError:
            raise BlockNotFound(
                f"block {block_id} not on datanode {self.node_id}"
            ) from None

    def has_block(self, block_id: int) -> bool:
        return block_id in self._blocks

    def delete_block(self, block_id: int) -> None:
        self._check_alive()
        self._blocks.pop(block_id, None)

    def fail(self) -> None:
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def used_bytes(self) -> int:
        return sum(len(b) for b in self._blocks.values())
