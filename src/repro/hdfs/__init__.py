"""Inc-HDFS substrate: in-process namenode/datanodes, content-based splits."""

from repro.hdfs.client import DEFAULT_BLOCK_SIZE, HDFSClient, UploadResult
from repro.hdfs.cluster import HDFSCluster
from repro.hdfs.datanode import DataNode
from repro.hdfs.errors import (
    BlockNotFound,
    DataNodeDown,
    FileAlreadyExists,
    FileNotFoundInHDFS,
    HDFSError,
    NoDataNodes,
)
from repro.hdfs.namenode import BlockInfo, FileMetadata, NameNode
from repro.hdfs.semantic import snap_cuts_to_records, split_records
from repro.hdfs.splits import InputSplit, file_splits

__all__ = [
    "DEFAULT_BLOCK_SIZE", "HDFSClient", "UploadResult", "HDFSCluster",
    "DataNode", "BlockNotFound", "DataNodeDown", "FileAlreadyExists",
    "FileNotFoundInHDFS", "HDFSError", "NoDataNodes",
    "BlockInfo", "FileMetadata", "NameNode",
    "snap_cuts_to_records", "split_records", "InputSplit", "file_splits",
]
