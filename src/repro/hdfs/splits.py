"""Input splits: the unit of work handed to Map tasks.

With the stock HDFS upload path, splits are fixed-size blocks: a small
insertion early in the file shifts every later block and changes every
split.  With the Inc-HDFS (Shredder) path, splits are content-defined
chunks whose digests are stable under local edits — the property that
makes Incoop's memoization effective (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdfs.namenode import FileMetadata

__all__ = ["InputSplit", "file_splits"]


@dataclass(frozen=True)
class InputSplit:
    """One split: a block of a file plus its stable content identity."""

    path: str
    index: int
    block_id: int
    offset: int
    length: int
    digest: bytes

    @property
    def split_id(self) -> str:
        """Stable identity: content digest (hex), used as memoization key."""
        return self.digest.hex()


def file_splits(meta: FileMetadata) -> list[InputSplit]:
    """The ordered input splits of a stored file (one per block)."""
    splits = []
    offset = 0
    for i, block in enumerate(meta.blocks):
        splits.append(
            InputSplit(
                path=meta.path,
                index=i,
                block_id=block.block_id,
                offset=offset,
                length=block.length,
                digest=block.digest,
            )
        )
        offset += block.length
    return splits
