"""Semantic chunking: respect record boundaries (§6.3).

Content-based chunking is oblivious to the input's structure, so a chunk
boundary could fall in the middle of a record.  The paper's Inc-HDFS
reuses the job's ``InputFormat`` to snap boundaries to record delimiters
so every split holds whole records.

:func:`snap_cuts_to_records` moves each content-defined cut forward to
the next delimiter, preserving the content-defined *stability* (a cut's
final position depends only on bytes near it) while guaranteeing
record-aligned splits.
"""

from __future__ import annotations

__all__ = ["snap_cuts_to_records", "split_records"]


def snap_cuts_to_records(
    data: bytes, cuts: list[int], delimiter: bytes = b"\n"
) -> list[int]:
    """Move each cut forward to just after the next ``delimiter``.

    The final cut stays at ``len(data)`` (the last record may be
    unterminated).  Cuts that collapse onto the same position merge, so
    the result is strictly increasing.
    """
    if not cuts:
        return []
    n = len(data)
    snapped: list[int] = []
    for cut in cuts:
        if cut >= n:
            pos = n
        else:
            nxt = data.find(delimiter, max(0, cut - 1))
            pos = n if nxt == -1 else nxt + len(delimiter)
        if not snapped or pos > snapped[-1]:
            snapped.append(pos)
    if snapped[-1] != n:
        snapped.append(n)
    return snapped


def split_records(data: bytes, delimiter: bytes = b"\n") -> list[bytes]:
    """Records of a split (without delimiters); tolerates a missing final
    delimiter."""
    if not data:
        return []
    records = data.split(delimiter)
    if records and records[-1] == b"":
        records.pop()
    return records
