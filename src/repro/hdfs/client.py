"""HDFS client: upload (fixed-size or Shredder content-based) and read.

Mirrors the paper's Fig. 14: the computationally expensive chunking runs
in the Shredder-enabled HDFS client before chunks are pushed to the
datanodes.  The shell-level distinction is preserved in the API:

``copy_from_local``      fixed-size blocks (stock HDFS behaviour)
``copy_from_local_gpu``  content-based chunking via a Shredder instance,
                         optionally snapped to record boundaries
                         (semantic chunking, §6.3)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chunking import Chunk
from repro.core.hashing import chunk_hash
from repro.core.shredder import Shredder, ShredderConfig, ShredderReport
from repro.hdfs.namenode import FileMetadata, NameNode
from repro.hdfs.semantic import snap_cuts_to_records
from repro.hdfs.splits import InputSplit, file_splits

__all__ = ["HDFSClient", "UploadResult", "DEFAULT_BLOCK_SIZE"]

#: Stock HDFS block size used by ``copy_from_local`` (64 MB in Hadoop
#: 0.20; kept smaller here so in-process tests exercise multi-block files).
DEFAULT_BLOCK_SIZE = 4 * 1024 * 1024


@dataclass
class UploadResult:
    """Outcome of an upload: file metadata plus chunking telemetry."""

    meta: FileMetadata
    n_blocks: int
    total_bytes: int
    shredder_report: ShredderReport | None = None


class HDFSClient:
    """Client connected to a NameNode (and through it, the datanodes)."""

    def __init__(self, namenode: NameNode) -> None:
        self.namenode = namenode

    # -- write paths ---------------------------------------------------------

    def _store_block(self, path: str, data: bytes) -> None:
        block = self.namenode.allocate_block(path, len(data), chunk_hash(data))
        for node_id in block.replicas:
            self.namenode.get_datanode(node_id).store_block(block.block_id, data)

    def copy_from_local(
        self, data: bytes, path: str, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> UploadResult:
        """Stock upload: fixed-size blocks (offset-defined boundaries)."""
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        meta = self.namenode.create_file(path, content_based=False)
        for off in range(0, len(data), block_size):
            self._store_block(path, data[off : off + block_size])
        self.namenode.complete_file(path)
        return UploadResult(meta, len(meta.blocks), meta.length)

    def copy_from_local_gpu(
        self,
        data: bytes,
        path: str,
        shredder: Shredder | None = None,
        record_delimiter: bytes | None = b"\n",
    ) -> UploadResult:
        """Inc-HDFS upload: content-based chunking offloaded to Shredder.

        When ``record_delimiter`` is given, chunk boundaries are snapped
        forward to record boundaries (semantic chunking) so no Map record
        is ever split across blocks.
        """
        own = shredder is None
        if own:
            shredder = Shredder(ShredderConfig.gpu_streams_memory())
        try:
            chunks, report = shredder.process(data)
        finally:
            if own:
                shredder.close()
        meta = self.namenode.create_file(path, content_based=True)
        if record_delimiter is not None:
            cuts = snap_cuts_to_records(data, [c.end for c in chunks], record_delimiter)
            prev = 0
            pieces = []
            for cut in cuts:
                pieces.append(data[prev:cut])
                prev = cut
        else:
            pieces = [c.data for c in chunks]
        for piece in pieces:
            if piece:
                self._store_block(path, piece)
        self.namenode.complete_file(path)
        return UploadResult(meta, len(meta.blocks), meta.length, report)

    def append_gpu(
        self,
        data: bytes,
        path: str,
        shredder: Shredder | None = None,
        record_delimiter: bytes | None = b"\n",
    ) -> UploadResult:
        """Content-defined append (the daily-ingest path of Inc-HDFS).

        Only the final block can be affected by an append (chunk
        boundaries are content-local), so the client re-chunks just
        ``last block + new data`` and replaces that one block.  Every
        earlier block — and therefore every memoized map result over it —
        is untouched.
        """
        meta = self.namenode.get_file(path)
        if not meta.content_based:
            raise ValueError(f"{path} was not uploaded with content-based chunking")
        tail = b""
        if meta.blocks:
            last = meta.blocks.pop()
            nodes = [self.namenode.get_datanode(n) for n in last.replicas]
            live = [n for n in nodes if n.alive]
            if not live:
                raise RuntimeError(f"tail block of {path} has no live replicas")
            tail = live[0].read_block(last.block_id)
            for node in live:
                node.delete_block(last.block_id)
        own = shredder is None
        if own:
            shredder = Shredder(ShredderConfig.gpu_streams_memory())
        try:
            chunks, report = shredder.process(tail + data)
        finally:
            if own:
                shredder.close()
        if record_delimiter is not None:
            combined = tail + data
            cuts = snap_cuts_to_records(
                combined, [c.end for c in chunks], record_delimiter
            )
            prev = 0
            pieces = []
            for cut in cuts:
                pieces.append(combined[prev:cut])
                prev = cut
        else:
            pieces = [c.data for c in chunks]
        for piece in pieces:
            if piece:
                self._store_block(path, piece)
        return UploadResult(meta, len(meta.blocks), meta.length, report)

    # -- read paths ----------------------------------------------------------

    def read(self, path: str) -> bytes:
        """Whole-file read, preferring the first live replica per block."""
        meta = self.namenode.get_file(path)
        out = bytearray()
        for block in meta.blocks:
            nodes = self.namenode.replica_nodes(block.block_id)
            if not nodes:
                raise RuntimeError(
                    f"block {block.block_id} of {path} has no live replicas"
                )
            out.extend(nodes[0].read_block(block.block_id))
        return bytes(out)

    def read_split(self, split: InputSplit) -> bytes:
        nodes = self.namenode.replica_nodes(split.block_id)
        if not nodes:
            raise RuntimeError(f"split {split.index} of {split.path} unreadable")
        return nodes[0].read_block(split.block_id)

    def get_splits(self, path: str) -> list[InputSplit]:
        return file_splits(self.namenode.get_file(path))

    def delete(self, path: str) -> None:
        self.namenode.delete_file(path)
