"""Error types for the in-process HDFS cluster."""

from __future__ import annotations

__all__ = [
    "HDFSError",
    "FileNotFoundInHDFS",
    "FileAlreadyExists",
    "BlockNotFound",
    "NoDataNodes",
    "DataNodeDown",
]


class HDFSError(Exception):
    """Base class for all HDFS errors."""


class FileNotFoundInHDFS(HDFSError):
    """The requested path does not exist in the namespace."""


class FileAlreadyExists(HDFSError):
    """Creating a path that already exists."""


class BlockNotFound(HDFSError):
    """A block id is unknown to the datanode or namenode."""


class NoDataNodes(HDFSError):
    """The cluster has no registered (live) datanodes."""


class DataNodeDown(HDFSError):
    """Operation routed to a datanode that is marked failed."""
