"""NameNode: namespace, block placement and replication management."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.hdfs.datanode import DataNode
from repro.hdfs.errors import (
    BlockNotFound,
    FileAlreadyExists,
    FileNotFoundInHDFS,
    NoDataNodes,
)

__all__ = ["BlockInfo", "FileMetadata", "NameNode"]


@dataclass
class BlockInfo:
    """Metadata of one block: where its replicas live and its identity.

    ``digest`` is the content hash of the block.  For content-based
    (Inc-HDFS) uploads it doubles as the *stable split identity* used by
    incremental MapReduce memoization.
    """

    block_id: int
    length: int
    digest: bytes
    replicas: list[int] = field(default_factory=list)


@dataclass
class FileMetadata:
    """An HDFS file: an ordered list of blocks plus upload provenance."""

    path: str
    blocks: list[BlockInfo] = field(default_factory=list)
    content_based: bool = False
    complete: bool = False

    @property
    def length(self) -> int:
        return sum(b.length for b in self.blocks)


class NameNode:
    """Namespace and placement authority of the cluster.

    Placement policy: replicas go to the ``replication`` live datanodes
    with the fewest used bytes (a simplification of HDFS's rack-aware
    policy that preserves the load-balancing property tests rely on).
    """

    def __init__(self, replication: int = 2) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.replication = replication
        self._files: dict[str, FileMetadata] = {}
        self._datanodes: dict[int, DataNode] = {}
        self._block_ids = count(1)
        self._block_index: dict[int, BlockInfo] = {}

    # -- cluster membership --------------------------------------------------

    def register_datanode(self, node: DataNode) -> None:
        self._datanodes[node.node_id] = node

    def live_datanodes(self) -> list[DataNode]:
        return [n for n in self._datanodes.values() if n.alive]

    def get_datanode(self, node_id: int) -> DataNode:
        return self._datanodes[node_id]

    # -- namespace -----------------------------------------------------------

    def create_file(self, path: str, content_based: bool = False) -> FileMetadata:
        if path in self._files:
            raise FileAlreadyExists(path)
        meta = FileMetadata(path=path, content_based=content_based)
        self._files[path] = meta
        return meta

    def get_file(self, path: str) -> FileMetadata:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInHDFS(path) from None

    def delete_file(self, path: str) -> None:
        meta = self.get_file(path)
        for block in meta.blocks:
            for node_id in block.replicas:
                node = self._datanodes.get(node_id)
                if node is not None and node.alive:
                    node.delete_block(block.block_id)
            self._block_index.pop(block.block_id, None)
        del self._files[path]

    def exists(self, path: str) -> bool:
        return path in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def complete_file(self, path: str) -> None:
        self.get_file(path).complete = True

    # -- block placement -----------------------------------------------------

    def allocate_block(self, path: str, length: int, digest: bytes) -> BlockInfo:
        """Choose replica targets for a new block of ``path``."""
        meta = self.get_file(path)
        live = self.live_datanodes()
        if not live:
            raise NoDataNodes("no live datanodes registered")
        targets = sorted(live, key=lambda n: n.used_bytes)[: self.replication]
        block = BlockInfo(
            block_id=next(self._block_ids),
            length=length,
            digest=digest,
            replicas=[n.node_id for n in targets],
        )
        meta.blocks.append(block)
        self._block_index[block.block_id] = block
        return block

    def block_info(self, block_id: int) -> BlockInfo:
        try:
            return self._block_index[block_id]
        except KeyError:
            raise BlockNotFound(f"block {block_id} unknown to namenode") from None

    def replica_nodes(self, block_id: int) -> list[DataNode]:
        """Live datanodes holding the block, preferred first."""
        info = self.block_info(block_id)
        nodes = [self._datanodes[nid] for nid in info.replicas]
        return [n for n in nodes if n.alive]

    # -- replication repair ----------------------------------------------------

    def under_replicated_blocks(self) -> list[BlockInfo]:
        """Blocks with fewer live replicas than the replication target."""
        return [
            info
            for info in self._block_index.values()
            if len(self.replica_nodes(info.block_id)) < self.replication
        ]

    def re_replicate(self) -> int:
        """Restore replication for degraded blocks from surviving copies.

        Returns the number of new replicas created.  Blocks with no live
        replica at all cannot be repaired and are skipped (a restored
        datanode brings them back).
        """
        created = 0
        for info in self.under_replicated_blocks():
            survivors = self.replica_nodes(info.block_id)
            if not survivors:
                continue
            data = survivors[0].read_block(info.block_id)
            have = {n.node_id for n in survivors}
            candidates = sorted(
                (n for n in self.live_datanodes() if n.node_id not in have),
                key=lambda n: n.used_bytes,
            )
            needed = self.replication - len(survivors)
            for target in candidates[:needed]:
                target.store_block(info.block_id, data)
                created += 1
                # Replace a dead holder in the replica list, or append.
                dead = [
                    nid for nid in info.replicas
                    if not self._datanodes[nid].alive
                ]
                if dead:
                    info.replicas[info.replicas.index(dead[0])] = target.node_id
                else:
                    info.replicas.append(target.node_id)
        return created
