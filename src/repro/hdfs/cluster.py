"""Convenience wiring for an in-process HDFS cluster."""

from __future__ import annotations

from repro.hdfs.client import HDFSClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode

__all__ = ["HDFSCluster"]


class HDFSCluster:
    """A NameNode, ``n`` DataNodes and a connected client.

    The paper's Fig. 15 experiment ran on a 20-node cluster; that is the
    default here.
    """

    def __init__(self, num_datanodes: int = 20, replication: int = 2) -> None:
        if num_datanodes < 1:
            raise ValueError("need at least one datanode")
        self.namenode = NameNode(replication=min(replication, num_datanodes))
        self.datanodes = [DataNode(node_id=i) for i in range(num_datanodes)]
        for node in self.datanodes:
            self.namenode.register_datanode(node)
        self.client = HDFSClient(self.namenode)

    @property
    def num_nodes(self) -> int:
        return len(self.datanodes)
