"""Root pytest config: hermetic autotune cache for the whole suite."""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _hermetic_autotune_cache(tmp_path_factory):
    """Keep the suite from writing the developer's real geometry cache.

    Defaulted engines may trigger a first-use autotune (a sub-two-second
    micro-benchmark); pointing the cache at a session temp file makes
    that write hermetic for every collected directory (tests/ and
    benchmarks/ alike).  Explicit settings win: CI pins
    ``REPRO_AUTOTUNE=0`` (static geometry), and a user-provided
    ``REPRO_AUTOTUNE_CACHE`` is respected.  Per-test isolation beyond
    this lives in tests/test_autotune.py's fixture.
    """
    if "REPRO_AUTOTUNE" in os.environ or "REPRO_AUTOTUNE_CACHE" in os.environ:
        yield
        return
    path = tmp_path_factory.mktemp("autotune") / "autotune.json"
    os.environ["REPRO_AUTOTUNE_CACHE"] = str(path)
    try:
        yield
    finally:
        os.environ.pop("REPRO_AUTOTUNE_CACHE", None)
