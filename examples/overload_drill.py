#!/usr/bin/env python3
"""Overload drill: hostile load against a quota'd, rate-limited service.

Boots one loopback backup service with every overload defence armed —
shared-secret auth, per-tenant quotas and rate limits, a restore
reserve, and a tight pre-auth deadline — then throws the works at it
all at once:

* a garbage-spraying connection flood plus silent slowloris holds
  (``wire.flood`` / ``client.slowloris`` from the fault plan);
* many more greedy backup clients than session slots, some over their
  tenant's byte quota, one with a forged auth token;
* a health prober hitting ``/health`` the whole time.

The drill passes only if the service stays responsive and *typed*
throughout:

1. every ``/health`` probe answers while the overload is live;
2. every refused client saw a typed error (BUSY / QUOTA_EXCEEDED /
   RETRY_LATER / UNAUTHORIZED) — never a hang, never a stack trace;
3. no unhandled exception escaped to the event loop;
4. the shed/throttle/eviction counters actually counted the abuse;
5. every admitted backup restores byte-exact afterwards;
6. no tenant's durable usage exceeds its byte quota — asserted from
   the accounting a *restarted* service reads back from disk.

Run:  python examples/overload_drill.py [--clients 16] [--seconds 1.0]
CI:   python examples/overload_drill.py  (the "Overload smoke" job)
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import tempfile
import urllib.request
from pathlib import Path

from repro.faults import FaultPlan, drive_overload
from repro.service import (
    AsyncBackupClient,
    BackupService,
    ServiceConfig,
    auth_token,
)
from repro.service.protocol import Err, RemoteError

KB = 1 << 10

#: Refusals the drill accepts as a correct answer under overload.
TYPED_REFUSALS = frozenset(
    {Err.BUSY, Err.QUOTA_EXCEEDED, Err.RETRY_LATER, Err.UNAUTHORIZED}
)

TENANTS = ("t0", "t1", "t2", "t3")
SECRET = "drill-secret"
QUOTA_BYTES = 400 * KB


def build_config(data_dir: str, auth_file: str, max_sessions: int) -> ServiceConfig:
    return ServiceConfig(
        backend="disk",
        data_dir=data_dir,
        auth_file=auth_file,
        max_sessions=max_sessions,
        restore_reserve=1,
        rate_bytes_per_s=128_000.0,   # burst 256 KB < a tenant's traffic
        shed_debt_s=10.0,             # pace first, shed true floods
        quota_bytes=QUOTA_BYTES,
        quota_sessions=max_sessions,  # per-tenant ceiling, not a gate here
        hello_timeout_s=0.25,
        window=4,
    )


async def greedy_client(port: int, i: int, outcomes: list) -> None:
    """One greedy backup client: retries BUSY briefly, accepts any
    typed refusal, records anything else as a drill failure."""
    tenant = TENANTS[i % len(TENANTS)]
    # One client per run presents a forged token: it must be turned
    # away with UNAUTHORIZED, not a hang or a generic error.
    token = auth_token("forged" if i == 0 else SECRET, tenant)
    data = random.Random(1000 + i).randbytes(192 * KB)
    rng = random.Random(2000 + i)
    for attempt in range(30):
        try:
            client = await AsyncBackupClient.connect(
                "127.0.0.1", port, tenant=tenant, auth=token,
                client_name=f"greedy-{i}",
            )
        except RemoteError as exc:
            if exc.code is Err.BUSY:
                await asyncio.sleep(0.05 + rng.random() * 0.1)
                continue
            if exc.code in TYPED_REFUSALS:
                outcomes.append(("refused", i, tenant, exc.code, None))
                return
            outcomes.append(("failed", i, tenant, exc.code, None))
            return
        except OSError as exc:
            outcomes.append(("failed", i, tenant, None, repr(exc)))
            return
        try:
            await client.backup(data, f"snap-{i}")
            outcomes.append(("ok", i, tenant, None, data))
            return
        except RemoteError as exc:
            if exc.code in TYPED_REFUSALS:
                outcomes.append(("refused", i, tenant, exc.code, None))
                return
            outcomes.append(("failed", i, tenant, exc.code, None))
            return
        except OSError as exc:
            outcomes.append(("failed", i, tenant, None, repr(exc)))
            return
        finally:
            try:
                await client.close()
            except (OSError, RemoteError):
                pass
    outcomes.append(("refused", i, tenant, Err.BUSY, None))


async def probe_health(port: int, stop: asyncio.Event, failures: list) -> int:
    """Poll /health until told to stop; count every probe."""
    probes = 0
    while not stop.is_set():
        try:
            body = await asyncio.to_thread(
                lambda: urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/health", timeout=2
                ).read()
            )
            if json.loads(body).get("status") != "ok":
                failures.append(body)
        except Exception as exc:  # noqa: BLE001 — any miss fails the drill
            failures.append(repr(exc))
        probes += 1
        await asyncio.sleep(0.1)
    return probes


async def run_drill(args, data_dir: str, auth_file: str) -> dict:
    unhandled: list = []
    loop = asyncio.get_running_loop()
    loop.set_exception_handler(
        lambda _loop, ctx: unhandled.append(ctx.get("message") or ctx)
    )

    plan = FaultPlan.parse(
        f"seed=3,wire.flood=8:{args.seconds},client.slowloris=8:{args.seconds}"
    )
    config = build_config(data_dir, auth_file, args.max_sessions)
    outcomes: list = []
    health_failures: list = []
    async with BackupService(config) as service:
        stop = asyncio.Event()
        prober = asyncio.create_task(
            probe_health(service.port, stop, health_failures)
        )
        await asyncio.gather(
            drive_overload("127.0.0.1", service.port, plan),
            *(
                greedy_client(service.port, i, outcomes)
                for i in range(args.clients)
            ),
        )
        stop.set()
        probes = await prober

        # Every admitted backup must restore byte-exact, through the
        # restore reserve (PURPOSE_RESTORE always has a slot).
        ok = [(i, tenant, data) for kind, i, tenant, _, data in outcomes
              if kind == "ok"]
        for i, tenant, data in ok:
            async with await AsyncBackupClient.connect(
                "127.0.0.1", service.port, tenant=tenant,
                auth=auth_token(SECRET, tenant), purpose=1,
            ) as client:
                restored = await client.restore(f"snap-{i}")
                assert restored == data, f"snap-{i} restore mismatch"

        usage_live = {
            t: service.registry.get(t).usage.as_dict() for t in TENANTS
        }
        metrics = service.metrics
        counters = {
            name: getattr(metrics, name)
            for name in (
                "preauth_evictions", "sessions_rejected", "sessions_shed",
                "throttles_sent", "retry_later_sent", "quota_rejections",
                "auth_failures", "errors_sent",
            )
        }
    loop.set_exception_handler(None)

    # Restart on the same data_dir: the durable accounting the fresh
    # service reads back must match what the dying one last committed.
    async with BackupService(config) as reborn:
        usage_reborn = {
            t: reborn.registry.get(t).usage.as_dict() for t in TENANTS
        }

    return {
        "outcomes": outcomes,
        "ok": len([o for o in outcomes if o[0] == "ok"]),
        "refused": len([o for o in outcomes if o[0] == "refused"]),
        "failed": [o for o in outcomes if o[0] == "failed"],
        "probes": probes,
        "health_failures": health_failures,
        "unhandled": unhandled,
        "counters": counters,
        "usage_live": usage_live,
        "usage_reborn": usage_reborn,
        "fault_stats": plan.stats.as_dict(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=16,
                        help="greedy backup clients (default 16)")
    parser.add_argument("--max-sessions", type=int, default=4,
                        help="service session slots (default 4)")
    parser.add_argument("--seconds", type=float, default=1.0,
                        help="flood/slowloris duration (default 1.0)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="overload-drill-") as tmp:
        auth_file = Path(tmp) / "auth"
        auth_file.write_text(
            "".join(f"{t}: {SECRET}\n" for t in TENANTS)
        )
        result = asyncio.run(
            run_drill(args, str(Path(tmp) / "svc"), str(auth_file))
        )

    counters = result["counters"]
    print(f"clients: {result['ok']} admitted+finished, "
          f"{result['refused']} refused with typed errors, "
          f"{len(result['failed'])} failed")
    print(f"health: {result['probes']} probes, "
          f"{len(result['health_failures'])} misses")
    print("counters:", ", ".join(f"{k}={v}" for k, v in counters.items()))
    print("hostile load:", result["fault_stats"]["flood_conns"], "flood +",
          result["fault_stats"]["slowloris_conns"], "slowloris connections")
    for tenant, usage in sorted(result["usage_reborn"].items()):
        print(f"  {tenant}: {usage['stored_bytes']} B / {QUOTA_BYTES} B quota "
              f"({usage['chunks']} chunks) after restart")

    failures = []
    if result["failed"]:
        failures.append(f"untyped client failures: {result['failed']}")
    if result["health_failures"]:
        failures.append(f"/health missed: {result['health_failures'][:3]}")
    if result["unhandled"]:
        failures.append(f"unhandled loop exceptions: {result['unhandled'][:3]}")
    if result["ok"] == 0:
        failures.append("no client was ever admitted")
    if counters["preauth_evictions"] == 0:
        failures.append("slowloris holds were never evicted")
    if counters["sessions_rejected"] == 0:
        failures.append("nothing was shed at admission")
    if counters["auth_failures"] == 0:
        failures.append("the forged token was not refused")
    if counters["throttles_sent"] + counters["retry_later_sent"] == 0:
        failures.append("rate limiter never engaged")
    if result["usage_live"] != result["usage_reborn"]:
        failures.append(
            f"restart lost accounting: {result['usage_live']} != "
            f"{result['usage_reborn']}"
        )
    for tenant, usage in result["usage_reborn"].items():
        if usage["stored_bytes"] > QUOTA_BYTES:
            failures.append(
                f"{tenant} stored {usage['stored_bytes']} B past its "
                f"{QUOTA_BYTES} B quota"
            )

    if failures:
        print("\nFAIL")
        for failure in failures:
            print(" -", failure)
        return 1
    print("\nPASS: responsive under overload, every refusal typed, "
          "quotas durable across restart, admitted backups byte-exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
