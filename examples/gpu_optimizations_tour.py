#!/usr/bin/env python3
"""A tour of the four Shredder optimizations (§4), one effect at a time.

For each optimization the script shows the underlying measurement the
paper used to motivate it, then the optimized result — regenerating the
logic of Figures 3, 5, 6, 9 and 11 at a glance.

Run:  python examples/gpu_optimizations_tour.py
"""

from repro.core.buffers import PinnedRingBuffer
from repro.core.chunking import ChunkerConfig
from repro.gpu import (
    ChunkingKernel,
    DMAModel,
    Direction,
    GPUDevice,
    HostMemoryModel,
    MemoryType,
    PhaseCosts,
    double_buffered_schedule,
    pipeline_schedule,
    serialized_schedule,
)

MB, GB = 1 << 20, 1 << 30
BUF = 64 * MB


def main() -> None:
    device = GPUDevice()
    dma = DMAModel()
    kernel = ChunkingKernel(ChunkerConfig())

    print("1) PCIe is the first wall (Fig. 3): effective DMA bandwidth")
    for size in (4 * 1024, 256 * 1024, BUF):
        pinned = dma.bandwidth(size, Direction.HOST_TO_DEVICE, MemoryType.PINNED)
        pageable = dma.bandwidth(size, Direction.HOST_TO_DEVICE, MemoryType.PAGEABLE)
        print(f"   {size // 1024:6d} KiB: pinned {pinned / 1e9:.2f} GB/s, "
              f"pageable {pageable / 1e9:.2f} GB/s")

    print("\n2) Concurrent copy and execution (Fig. 4/5): double buffering")
    transfer = dma.transfer_time(BUF, Direction.HOST_TO_DEVICE, MemoryType.PINNED)
    naive_kernel = kernel.estimate(device, BUF, coalesced=False).kernel_seconds
    phases = [PhaseCosts(0.0, transfer, naive_kernel, 0.0)] * (GB // BUF)
    serial = serialized_schedule(phases).total_seconds
    concurrent = double_buffered_schedule(phases).total_seconds
    print(f"   serialized {serial * 1e3:.0f} ms -> concurrent {concurrent * 1e3:.0f} ms "
          f"({1 - concurrent / serial:.0%} saved; copy off the critical path)")

    print("\n3) Pinned ring buffer (Fig. 6/7): allocation amortization")
    mem = HostMemoryModel()
    fresh = mem.alloc_pinned(BUF).alloc_seconds
    ring = PinnedRingBuffer(HostMemoryModel(), BUF, num_slots=4)
    reused = ring.amortized_cost(64) + ring.staging_copy_time(BUF)
    print(f"   pinned alloc per transfer {fresh * 1e3:.1f} ms -> "
          f"ring reuse {reused * 1e3:.1f} ms ({fresh / reused:.1f}x cheaper)")

    print("\n4) Streaming pipeline (Fig. 8/9): use the idle host cores")
    read = BUF / 2e9
    store = device.download_time((BUF // 8192) * 8)
    full_phases = [PhaseCosts(read, transfer, naive_kernel, store)] * (GB // BUF)
    serial = pipeline_schedule(full_phases, stages=1).total_seconds
    for stages in (2, 3, 4):
        t = pipeline_schedule(full_phases, stages=stages).total_seconds
        print(f"   {stages}-stage pipeline: speedup {serial / t:.2f}x")

    print("\n5) Memory coalescing (Fig. 10/11): kill the bank conflicts")
    naive = kernel.estimate(device, BUF, coalesced=False)
    coal = kernel.estimate(device, BUF, coalesced=True)
    print(f"   naive: {naive.kernel_seconds * 1e3:6.1f} ms "
          f"(conflict rate {naive.bank_conflict_rate:.0%}, memory-bound)")
    print(f"   coalesced: {coal.kernel_seconds * 1e3:6.1f} ms "
          f"(conflict rate {coal.bank_conflict_rate:.0%}, compute-bound)")
    print(f"   speedup {naive.kernel_seconds / coal.kernel_seconds:.1f}x "
          "(paper: ~8x)")


if __name__ == "__main__":
    main()
