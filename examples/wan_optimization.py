#!/usr/bin/env python3
"""Future work (§9): WAN optimization with RE middleboxes.

Deploys a Shredder-accelerated redundancy-elimination tunnel between two
sites and streams web-like traffic (Zipf-popular objects, occasionally
updated) through it, reporting the WAN bandwidth saved.

Run:  python examples/wan_optimization.py
"""

from repro.netre import REConfig, RETunnel, TrafficConfig, TrafficGenerator

KB = 1024


def main() -> None:
    print("RE tunnel: Shredder chunking + synchronized LRU chunk caches\n")
    for update_p in (0.0, 0.25, 0.75):
        tunnel = RETunnel(REConfig(use_gpu=True, cache_bytes=4 * 1024 * KB))
        generator = TrafficGenerator(
            TrafficConfig(
                n_objects=30,
                object_size=24 * KB,
                update_probability=update_p,
                seed=17,
            )
        )
        savings = tunnel.send_all(generator.requests(100))
        sent = tunnel.original_bytes / KB
        wire = tunnel.wire_bytes / KB
        print(
            f"update probability {update_p:.2f}: "
            f"{sent:8.0f} KiB requested -> {wire:8.0f} KiB on the wire "
            f"({savings:6.1%} saved, "
            f"{tunnel.encoder.cache.evictions} cache evictions)"
        )
        tunnel.close()
    print("\nEvery payload was reconstructed and verified at the far end.")


if __name__ == "__main__":
    main()
