#!/usr/bin/env python3
"""Quickstart: content-based chunking with Shredder.

Chunks a stream with the fully optimized GPU configuration, verifies the
chunks reassemble exactly, deduplicates a second, slightly-edited copy,
shows the zero-copy streaming API, the self-tuned scan geometry, the
threaded engine + stage-overlapped pipeline, and prints the modeled
throughput for each backend configuration (the Figure 12 bars).

Run:  python examples/quickstart.py          # REPRO_THREADS=N to pin workers
                                             # REPRO_AUTOTUNE=0 for static
                                             # scan geometry
"""

from repro.backup import BackupConfig, BackupServer
from repro.core import (
    Chunker,
    DedupIndex,
    Shredder,
    ShredderConfig,
    ensure_digests,
    get_threads,
    set_threads,
)
from repro.workloads import mutate, seeded_bytes

MB = 1 << 20
GB = 1 << 30


def main() -> None:
    data = seeded_bytes(8 * MB, seed=1)

    # -- chunk a buffer -----------------------------------------------------
    with Shredder(ShredderConfig.gpu_streams_memory()) as shredder:
        chunks, report = shredder.process(data)
    assert b"".join(c.data for c in chunks) == data
    print(f"chunked {report.total_bytes // MB} MiB into {report.n_chunks} chunks")
    print(f"mean chunk size: {report.mean_chunk_size:.0f} B "
          f"(expected {shredder.config.chunker.expected_chunk_size} B)")
    print(f"modeled time: {report.simulated_seconds * 1e3:.1f} ms "
          f"({report.throughput_bps / 1e9:.2f} GB/s, bottleneck: {report.bottleneck()})")

    # -- deduplicate an edited copy ------------------------------------------
    edited = mutate(data, percent=3, mode="replace", seed=2, edit_size=64 * 1024)
    with Shredder(ShredderConfig.gpu_streams_memory()) as shredder:
        edited_chunks, _ = shredder.process(edited)
    index = DedupIndex()
    index.add_all(chunks)
    stats = index.add_all(edited_chunks)
    print(f"\nafter 3% edits: {stats.dedup_ratio:.1%} of bytes deduplicated "
          f"({stats.duplicate_chunks} of {stats.total_chunks} chunks)")

    # -- zero-copy streaming API ---------------------------------------------
    # Chunkers accept any buffer-protocol object (memoryview, bytearray,
    # mmap, NumPy uint8 arrays) and never copy the payload: chunks are
    # lazy (offset, length) views whose data/digest materialize on
    # demand, and a whole batch hashes in one pass via ensure_digests.
    chunker = Chunker(shredder.config.chunker)
    view = memoryview(data)
    buffers = [view[off : off + MB] for off in range(0, len(view), MB)]
    streamed = list(chunker.chunk_stream(buffers))  # scans the views in place
    ensure_digests(streamed)  # batched hashing; c.digest is now free
    assert [c.digest for c in streamed] == [c.digest for c in chunks]
    known = {x.digest for x in chunks}
    dup = sum(1 for c in streamed if c.digest in known)
    print(f"\nzero-copy stream: {len(streamed)} chunks from {len(buffers)} "
          f"buffer views, {dup} digests matched without copying a payload")

    # -- self-tuned scan geometry --------------------------------------------
    # The striped scan's tile size, lane count, fused roll-step factor,
    # and thread default are *measured* for this host, not assumed: the
    # first defaulted engine triggers a sub-two-second micro-benchmark
    # whose winner persists to ~/.cache/repro/autotune.json (override
    # with REPRO_AUTOTUNE_CACHE; disable with REPRO_AUTOTUNE=0).  Run
    # `python -m repro tune` for the full grid, `--show` to inspect,
    # `--force` to re-measure after a hardware/NumPy change.
    from repro.core import get_geometry

    geometry = get_geometry()
    print(f"\nscan geometry [{geometry.source}]: lanes={geometry.lanes}, "
          f"tile={geometry.tile_bytes >> 20} MiB, "
          f"fused roll_steps={geometry.roll_steps}")

    # -- threaded scan + stage-overlapped pipeline ---------------------------
    # One knob (REPRO_THREADS / set_threads / CLI --threads) drives the
    # scan and hash worker pools; 0/1 = serial.  chunk_pipelined overlaps
    # the marker scan of buffer i+1 with the hashing of buffer i, and the
    # caller's work (here: dedup probes) overlaps both.  Chunks are
    # bit-identical to the serial path at any thread count.
    set_threads(4)
    piped = list(chunker.chunk_pipelined(buffers))
    assert [c.digest for c in piped] == [c.digest for c in chunks]
    print(f"\npipelined chunk+hash with {get_threads()} workers: "
          f"{len(piped)} chunks, digests prefilled, stream order kept")
    set_threads(None)  # back to auto-detect

    # The backup server runs the same way by default (pipelined=True):
    # batched index/cluster lookups and agent shipping overlap the scan.
    with BackupServer(BackupConfig(engine="gpu")) as server:
        server.backup_snapshot(data, "base")
        report = server.backup_snapshot(edited, "edited")
    print(f"pipelined backup: {report.n_chunks} chunks, "
          f"{report.dedup_fraction:.1%} duplicates, "
          f"shipped {report.shipped_bytes // 1024} KiB")

    # -- persistent storage backend ------------------------------------------
    # Every state owner (dedup index, site store/cluster shards, recipes)
    # stores through one batched ChunkBackend seam.  backend="disk" puts
    # them on an append-only chunk log + LSM digest index under data_dir,
    # so a server can be closed, the process restarted, and a new server
    # opened on the same directory: snapshots restore bit-identical and
    # re-backing-up known data ships zero bytes.  Same via the CLI:
    #   python -m repro cluster FILE --backend disk --data-dir DIR
    import tempfile

    with tempfile.TemporaryDirectory() as state_dir:
        durable = BackupConfig(backend="disk", data_dir=state_dir)
        with BackupServer(durable) as server:
            server.backup_snapshot(data, "durable")
        with BackupServer(durable) as server:  # "restarted" process
            assert server.agent.restore("durable") == data
            again = server.backup_snapshot(data, "durable-again")
        print(f"\ndisk backend: reopened {state_dir} — restore byte-exact, "
              f"re-backup shipped {again.shipped_bytes} B "
              f"({again.dedup_fraction:.0%} duplicates)")

    # -- compare the Figure 12 configurations --------------------------------
    print("\nmodeled chunking bandwidth for a 1 GiB stream (Figure 12):")
    for name, cfg in [
        ("CPU w/o Hoard", ShredderConfig.cpu(hoard=False)),
        ("CPU w/ Hoard", ShredderConfig.cpu(hoard=True)),
        ("GPU Basic", ShredderConfig.gpu_basic()),
        ("GPU Streams", ShredderConfig.gpu_streams()),
        ("GPU Streams + Memory", ShredderConfig.gpu_streams_memory()),
    ]:
        with Shredder(cfg) as shredder:
            bps = shredder.simulate(GB).throughput_bps
        print(f"  {name:22s} {bps / 1e9:5.2f} GB/s")


if __name__ == "__main__":
    main()
