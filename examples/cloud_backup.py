#!/usr/bin/env python3
"""Case study II: consolidated cloud backup with dedup (§7).

Emulates the paper's backup testbed: a master VM image plus a similarity
table drive snapshot generation; the backup server chunks each snapshot
with Shredder (min/max chunk sizes enabled), ships only unseen chunks to
the backup-site agent, and the agent rebuilds and verifies each snapshot.

Run:  python examples/cloud_backup.py
"""

from repro.backup import BackupConfig, BackupServer, MasterImage, SimilarityTable

MB = 1 << 20


def main() -> None:
    image = MasterImage(size=8 * MB, segment_size=32 * 1024, seed=13)
    print(f"master image: {image.size // MB} MiB, {image.n_segments} segments\n")

    for engine in ("cpu", "gpu"):
        label = "Shredder-GPU" if engine == "gpu" else "Pthreads-CPU"
        print(f"{label} backup pipeline:")
        with BackupServer(BackupConfig(engine=engine)) as server:
            base = server.backup_snapshot(image.data, "master")
            print(f"  master backup: {base.n_chunks} chunks, "
                  f"{base.shipped_bytes // 1024} KiB shipped")
            for generation, p in enumerate((0.05, 0.15, 0.25), start=1):
                table = SimilarityTable.uniform(p, image.n_segments)
                snap = image.snapshot(table, generation)
                snap_id = f"{engine}-gen{generation}"
                report = server.backup_snapshot(snap, snap_id)
                restored = server.agent.restore(snap_id)
                assert restored == snap, "backup-site reconstruction failed"
                print(
                    f"  p={p:.2f}: {report.backup_bandwidth_gbps:5.2f} Gbps, "
                    f"dedup {report.dedup_fraction:5.1%}, "
                    f"shipped {report.shipped_bytes / MB:5.2f} MiB, "
                    f"bottleneck {report.bottleneck}, restore OK"
                )
            store = server.agent.store
            logical = sum(
                store.get_recipe(r).total_bytes
                for r in [f"{engine}-gen{g}" for g in (1, 2, 3)] + ["master"]
            )
            print(f"  backup-site store: {store.stored_bytes / MB:.1f} MiB physical "
                  f"for {logical / MB:.1f} MiB logical\n")


if __name__ == "__main__":
    main()
