#!/usr/bin/env python3
"""Case study I: incremental MapReduce over Inc-HDFS (§6).

Uploads a text corpus to Inc-HDFS with Shredder content-based chunking,
runs Word-Count, then changes 5% of the records and re-runs.  The Incoop
runtime reuses memoized map tasks for every unchanged split and reports
the speedup over a from-scratch Hadoop run.

Run:  python examples/incremental_wordcount.py
"""

from repro.core.chunking import ChunkerConfig
from repro.core.shredder import Shredder, ShredderConfig
from repro.hdfs import HDFSCluster
from repro.mapreduce import IncoopRuntime
from repro.mapreduce.applications import wordcount_job, wordcount_reference
from repro.workloads import generate_text, mutate_records

CHUNKER = ChunkerConfig(mask_bits=10, marker=0x2AB, min_size=256, max_size=2048)
UPLOAD = ShredderConfig.gpu_streams_memory(chunker=CHUNKER)


def upload(cluster: HDFSCluster, data: bytes, path: str) -> None:
    with Shredder(UPLOAD) as shredder:
        result = cluster.client.copy_from_local_gpu(data, path, shredder=shredder)
    print(f"  uploaded {len(data)} B to {path} as {result.n_blocks} "
          "content-defined, record-aligned splits")


def main() -> None:
    text = generate_text(400_000, seed=7)
    cluster = HDFSCluster(num_datanodes=20)
    incoop = IncoopRuntime(cluster.client)
    job = wordcount_job()

    print("initial run (cold memo server):")
    upload(cluster, text, "/wiki/day0")
    first = incoop.run_incremental(job, "/wiki/day0")
    assert first.output == wordcount_reference(text)
    s = first.stats
    print(f"  ran {s.map_tasks_run} map tasks, reused {s.map_tasks_reused}; "
          f"cluster makespan {s.makespan_seconds:.2f}s\n")

    print("incremental run after changing 5% of records:")
    changed = mutate_records(text, 5, seed=8)
    upload(cluster, changed, "/wiki/day1")
    second, speedup = incoop.speedup_vs_full(job, "/wiki/day1")
    assert second.output == wordcount_reference(changed)
    s = second.stats
    print(f"  ran {s.map_tasks_run} map tasks, reused {s.map_tasks_reused} "
          f"({s.reuse_fraction:.0%} reuse)")
    print(f"  contraction nodes: {s.combine_nodes_run} recomputed, "
          f"{s.combine_nodes_reused} reused")
    print(f"  speedup vs from-scratch Hadoop run: {speedup:.1f}x")
    print("  output verified identical to a non-incremental run")


if __name__ == "__main__":
    main()
