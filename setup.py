from setuptools import find_packages, setup

setup(
    name="shredder-repro",
    version="0.1.0",
    description=(
        "Reproduction of Shredder (FAST 2012): GPU-accelerated "
        "content-based chunking for incremental storage and computation"
    ),
    long_description=(
        "Modeled reproduction of the Shredder paper's pipelines — "
        "content-based chunking, dedup backup with a sharded "
        "chunk-store cluster, Inc-HDFS, and incremental MapReduce."
    ),
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Archiving :: Backup",
    ],
)
